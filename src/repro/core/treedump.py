"""Materialized execution index trees (the paper's Fig. 4).

The profiler never stores the whole index tree — that is the point of
the construct pool — but for understanding a program (and for teaching
the technique) the full tree of a *small* run is exactly the right
picture: procedures and predicates are internal nodes, loop iterations
are siblings, and the path from the root to any node is that node's
execution index.

:class:`IndexTreeRecorder` taps the indexing stack's push/pop
observers, so the recorded tree reflects precisely what the profiling
rules (Fig. 5) did — including iteration-sibling placement, constructs
closed early by ``break``/``goto``, and recursion. A node budget keeps
accidental use on large runs from exhausting memory; the tree is
marked truncated instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.constructs import ConstructTable, StaticConstruct
from repro.core.tracer import AlchemistTracer
from repro.ir.cfg import ProgramIR
from repro.ir.lowering import compile_source
from repro.runtime.interpreter import Interpreter

#: Default cap on recorded nodes; beyond it the tree is truncated.
DEFAULT_MAX_NODES = 100_000


@dataclass
class RecordedNode:
    """One construct instance, permanently recorded."""

    static: StaticConstruct
    t_enter: int
    t_exit: int = 0
    children: list["RecordedNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.static.name

    @property
    def duration(self) -> int:
        return self.t_exit - self.t_enter

    def walk(self):
        """Yield (depth, node) in preorder."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))


@dataclass
class IndexTree:
    """The recorded tree of one run, rooted at ``main``."""

    root: RecordedNode
    node_count: int
    truncated: bool

    def paths(self):
        """Yield the execution index (root-to-node name list, Fig. 4's
        bracket notation) of every node, preorder."""
        def visit(node, prefix):
            index = prefix + [node.name]
            yield node, index
            for child in node.children:
                yield from visit(child, index)
        yield from visit(self.root, [])

    def index_of_first(self, name: str) -> list[str] | None:
        """The index of the first instance of the named construct."""
        for node, index in self.paths():
            if node.name == name:
                return index
        return None

    def instances_of(self, name: str) -> list[RecordedNode]:
        return [node for node, _ in self.paths() if node.name == name]

    def render(self, max_depth: int | None = None,
               max_children: int = 12) -> str:
        """ASCII tree in the style of Fig. 4's index trees."""
        lines: list[str] = []
        self._render_node(self.root, "", "", lines, max_depth,
                          max_children)
        if self.truncated:
            lines.append(f"... truncated at {self.node_count} nodes")
        return "\n".join(lines)

    def _render_node(self, node: RecordedNode, lead: str, branch: str,
                     lines: list[str], max_depth: int | None,
                     max_children: int) -> None:
        lines.append(f"{lead}{branch}{node.name} "
                     f"[{node.t_enter}, {node.t_exit}]")
        if max_depth is not None and max_depth <= 0:
            if node.children:
                lines.append(f"{lead}    ...")
            return
        shown = node.children[:max_children]
        hidden = len(node.children) - len(shown)
        child_lead = lead + ("    " if branch in ("", "`- ")
                             else "|   ")
        next_depth = None if max_depth is None else max_depth - 1
        for i, child in enumerate(shown):
            last = i == len(shown) - 1 and hidden == 0
            self._render_node(child, child_lead,
                              "`- " if last else "|- ",
                              lines, next_depth, max_children)
        if hidden:
            lines.append(f"{child_lead}`- ... {hidden} more sibling(s)")


class IndexTreeRecorder:
    """Observer pair for an :class:`IndexingStack`; builds the tree."""

    def __init__(self, max_nodes: int = DEFAULT_MAX_NODES):
        self.max_nodes = max_nodes
        self.node_count = 0
        self.truncated = False
        self.root: RecordedNode | None = None
        self._stack: list[RecordedNode | None] = []

    def attach(self, stack) -> None:
        stack.push_observer = self.on_push
        stack.pop_observer = self.on_pop

    def on_push(self, static: StaticConstruct, timestamp: int) -> None:
        if self.node_count >= self.max_nodes:
            self.truncated = True
            self._stack.append(None)  # placeholder to keep pops paired
            return
        node = RecordedNode(static, timestamp)
        self.node_count += 1
        parent = next((n for n in reversed(self._stack) if n is not None),
                      None)
        if parent is not None:
            parent.children.append(node)
        elif self.root is None:
            self.root = node
        self._stack.append(node)

    def on_pop(self, node, timestamp: int) -> None:
        recorded = self._stack.pop()
        if recorded is not None:
            recorded.t_exit = timestamp

    def tree(self) -> IndexTree:
        if self.root is None:
            raise RuntimeError("no construct was ever entered")
        return IndexTree(self.root, self.node_count, self.truncated)


def record_index_tree(source: str | None = None, *,
                      program: ProgramIR | None = None,
                      max_nodes: int = DEFAULT_MAX_NODES
                      ) -> tuple[IndexTree, AlchemistTracer]:
    """Run a program recording its full execution index tree.

    Returns ``(tree, tracer)`` — the tracer carries the ordinary
    profile, so a single run yields both views.
    """
    if program is None:
        if source is None:
            raise ValueError("need source or program")
        program = compile_source(source)
    table = ConstructTable(program)
    tracer = AlchemistTracer(table)
    recorder = IndexTreeRecorder(max_nodes)
    recorder.attach(tracer.stack)
    Interpreter(program, tracer).run()
    return recorder.tree(), tracer
