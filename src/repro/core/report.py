"""Profile reports: the queryable result of an Alchemist run.

A :class:`ProfileReport` joins the static construct table with the
collected profiles and answers every question the paper's evaluation
asks:

* ranked constructs by executed instructions (Fig. 2's listing);
* violating static dependences per construct — edges failing
  ``Tdep > Tdur`` (Fig. 6's y-axis; Table IV's conflict counts);
* normalized (size, violations) series for the Fig. 6 scatter plots,
  including the paper's "remove the parallelized construct and its
  per-instance-singleton descendants" refinement step (Fig. 6(b));
* per-source-line conflict summaries (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.callgraph import call_sites
from repro.analysis.constructs import (ConstructKind, ConstructTable,
                                       StaticConstruct)
from repro.core.pool import PoolStats
from repro.core.profile_data import (ConstructProfile, DepKind, EdgeStats,
                                     ProfileStore)
from repro.ir.cfg import ProgramIR


@dataclass
class RunStats:
    """Execution statistics reported with every profile."""

    wall_seconds: float = 0.0
    baseline_seconds: float | None = None
    instructions: int = 0
    dynamic_instances: int = 0
    static_constructs: int = 0
    max_index_depth: int = 0
    raw_events: int = 0
    war_events: int = 0
    waw_events: int = 0
    edges_profiled: int = 0
    pool: PoolStats = field(default_factory=PoolStats)
    #: Sampling spec of the event stream this profile was built from
    #: (None = full fidelity). A sampled profile is a hint: dropped
    #: events hide dependences, and dropped writes can mis-pair later
    #: reads with stale writers, so edges and min distances shift in
    #: both directions.
    sampling: str | None = None

    @property
    def slowdown(self) -> float | None:
        """Profiled / baseline wall time (the paper's 166x-712x factor)."""
        if self.baseline_seconds and self.baseline_seconds > 0:
            return self.wall_seconds / self.baseline_seconds
        return None


class ConstructView:
    """One construct's profile, bound to a report for derived metrics."""

    def __init__(self, report: "ProfileReport", profile: ConstructProfile):
        self._report = report
        self.profile = profile
        self.static: StaticConstruct = profile.static

    # -- identity -------------------------------------------------------------

    @property
    def pc(self) -> int:
        return self.static.pc

    @property
    def name(self) -> str:
        return self.static.name

    @property
    def kind(self) -> ConstructKind:
        return self.static.kind

    @property
    def line(self) -> int:
        return self.static.line

    @property
    def fn_name(self) -> str:
        return self.static.fn_name

    # -- metrics ---------------------------------------------------------------

    @property
    def total_duration(self) -> int:
        return self.profile.total_duration

    @property
    def instances(self) -> int:
        return self.profile.instances

    @property
    def tdur(self) -> int:
        return self.profile.tdur

    def size_fraction(self) -> float:
        """Duration normalized to total executed instructions (Fig. 6 x)."""
        total = self._report.stats.instructions
        return self.total_duration / total if total else 0.0

    def edges(self, kind: DepKind) -> list[EdgeStats]:
        return self.profile.edges_of(kind)

    def violating(self, kind: DepKind) -> list[EdgeStats]:
        return self.profile.violating_edges(kind)

    def violating_count(self, kind: DepKind) -> int:
        return len(self.violating(kind))

    def _tail_inside(self, edge: EdgeStats) -> bool:
        """Is the edge's tail inside this construct (a cross-instance
        dependence) rather than in the continuation?

        "Inside" covers the construct's own blocks *and* any function
        whose every call site lies within them (transitively): a helper
        called only from a loop body executes as part of the loop, so a
        dependence landing in it is iteration-carried, not a
        continuation conflict.
        """
        pc_block = self._report._pc_block_map()
        block = pc_block.get(edge.tail_pc)
        if self.static.kind is ConstructKind.PROCEDURE:
            fn = self._report.program.functions[self.static.fn_name]
            region = {b.id for b in fn.blocks}
        else:
            region = set(self.static.region or frozenset())
        if block in region:
            return True
        tail_fn = self._report.program.fn_of(edge.tail_pc)
        return tail_fn in self._report._contained_functions_cached(
            self.pc, frozenset(region))

    def violating_internal(self, kind: DepKind) -> list[EdgeStats]:
        """Violating edges between instances of this construct — these
        genuinely block parallel execution of the instances."""
        return [e for e in self.violating(kind) if self._tail_inside(e)]

    def violating_continuation(self, kind: DepKind) -> list[EdgeStats]:
        """Violating edges into the continuation — handled by joining
        the future before the conflicting access (paper §II)."""
        return [e for e in self.violating(kind)
                if not self._tail_inside(e)]

    def violation_fraction(self, kind: DepKind = DepKind.RAW) -> float:
        """Violating static edges normalized to the program-wide total of
        violating edges of that kind (Fig. 6 y)."""
        total = self._report.total_violating(kind)
        return self.violating_count(kind) / total if total else 0.0

    # -- rendering ---------------------------------------------------------------

    def describe(self) -> str:
        """Fig. 2 header style: 'Method flush_block Tdur=..., inst=...'."""
        kind_word = {
            ConstructKind.PROCEDURE: "Method",
            ConstructKind.LOOP: "Loop",
            ConstructKind.COND: "Cond",
        }[self.kind]
        return (f"{kind_word} {self.name} Tdur={self.total_duration}, "
                f"inst={self.instances}")

    def edge_lines(self, kinds: tuple[DepKind, ...] = (DepKind.RAW,),
                   limit: int = 10, violating_first: bool = True
                   ) -> list[str]:
        """Fig. 2/3 edge rows: 'RAW: line 28 -> line 10 Tdep=3 [outcnt]'."""
        program = self._report.program
        selected: list[tuple[bool, EdgeStats]] = []
        for kind in kinds:
            bound = self.tdur
            for edge in self.profile.edges_of(kind):
                selected.append((edge.min_tdep <= bound, edge))
        if violating_first:
            # Total order: the tail of the key pins ties that would
            # otherwise fall back to dict insertion order, which
            # differs between a serial replay and a parallel merge.
            kind_rank = {kind: rank for rank, kind in enumerate(kinds)}
            selected.sort(key=lambda pair: (
                not pair[0], pair[1].min_tdep, kind_rank[pair[1].kind],
                pair[1].head_pc, pair[1].tail_pc))
        lines = []
        for is_violating, edge in selected[:limit]:
            head_line = program.loc_of(edge.head_pc)[0]
            tail_line = program.loc_of(edge.tail_pc)[0]
            marker = " *" if is_violating else ""
            hint = f" [{edge.var_hint}]" if edge.var_hint else ""
            lines.append(
                f"  {edge.kind.value}: line {head_line} -> line {tail_line}"
                f" Tdep={edge.min_tdep}{hint}{marker}")
        return lines


@dataclass
class Fig6Row:
    """One point of a Fig. 6 scatter: construct label, normalized size,
    normalized violating static RAW dependences."""

    label: str
    view: ConstructView
    norm_size: float
    norm_violations: float


@dataclass
class ConflictCounts:
    """Table IV row: violating static dependences at a parallelized
    location."""

    location: str
    raw: int
    waw: int
    war: int


class ProfileReport:
    """The result of one profiled execution."""

    def __init__(self, program: ProgramIR, table: ConstructTable,
                 store: ProfileStore, stats: RunStats,
                 exit_value: int = 0,
                 output: list[tuple[int, ...]] | None = None):
        self.program = program
        self.table = table
        self.store = store
        self.stats = stats
        self.exit_value = exit_value
        self.output = output if output is not None else []
        self._views: dict[int, ConstructView] = {
            pc: ConstructView(self, profile)
            for pc, profile in store.profiles.items()
        }
        self._totals: dict[DepKind, int] = {}
        self._pc_block: dict[int, int] | None = None
        self._contained_cache: dict[int, set[str]] = {}

    # -- basic queries ------------------------------------------------------------

    def constructs(self) -> list[ConstructView]:
        """All executed constructs, largest first."""
        return sorted(self._views.values(),
                      key=lambda v: (-v.total_duration, v.pc))

    def top_constructs(self, count: int = 10,
                       kind: ConstructKind | None = None,
                       min_duration: int = 0) -> list[ConstructView]:
        views = [v for v in self.constructs()
                 if v.total_duration >= min_duration
                 and (kind is None or v.kind is kind)]
        return views[:count]

    def view(self, pc: int) -> ConstructView:
        return self._views[pc]

    def views_at_line(self, line: int,
                      fn_name: str | None = None) -> list[ConstructView]:
        """Constructs whose head predicate sits on a source line; loops
        first (the paper names parallelized regions by line)."""
        matches = [v for v in self._views.values()
                   if v.line == line
                   and (fn_name is None or v.fn_name == fn_name)]
        order = {ConstructKind.LOOP: 0, ConstructKind.PROCEDURE: 1,
                 ConstructKind.COND: 2}
        matches.sort(key=lambda v: (order[v.kind], -v.total_duration))
        return matches

    def total_violating(self, kind: DepKind) -> int:
        """Program-wide count of violating static edges (Fig. 6's
        normalization denominator)."""
        total = self._totals.get(kind)
        if total is None:
            total = sum(v.violating_count(kind)
                        for v in self._views.values())
            self._totals[kind] = total
        return total

    # -- Fig. 6 -------------------------------------------------------------------

    def fig6_series(self, top: int = 12,
                    exclude: set[int] | None = None,
                    include_main: bool = False) -> list[Fig6Row]:
        """The (normalized size, normalized violating static RAW) series
        for the largest constructs, labelled C1, C2, ... like Fig. 6.

        ``main`` itself is omitted by default: its normalized size is
        trivially 1.0 and it is not a parallelization candidate, so the
        paper's figures start at the largest real construct.
        """
        exclude = exclude or set()
        views = [v for v in self.constructs()
                 if v.pc not in exclude
                 and (include_main or not (
                     v.kind is ConstructKind.PROCEDURE
                     and v.fn_name == "main"))]
        rows = []
        for i, view in enumerate(views[:top], start=1):
            rows.append(Fig6Row(
                label=f"C{i}",
                view=view,
                norm_size=view.size_fraction(),
                norm_violations=view.violation_fraction(DepKind.RAW),
            ))
        return rows

    def nested_singletons(self, pc: int) -> set[int]:
        """Constructs with exactly one instance per instance of the
        construct at ``pc`` that are statically nested inside it.

        This is the paper's Fig. 6(b) refinement: once C1 is
        parallelized, such constructs are "parallelized too" and are
        removed before looking for the next candidate.
        """
        center = self._views.get(pc)
        if center is None:
            return set()
        static = center.static
        # Blocks belonging to the construct.
        if static.kind is ConstructKind.PROCEDURE:
            fn = self.program.functions[static.fn_name]
            region = {block.id for block in fn.blocks}
        else:
            region = set(static.region or ())
        # Functions whose every call site lies inside the region (or inside
        # a function already swallowed) execute only as part of C.
        contained_fns = self._contained_functions(region)
        pc_block = self._pc_block_map()
        nested: set[int] = set()
        for view in self._views.values():
            if view.pc == pc:
                continue
            inside = False
            if view.fn_name in contained_fns:
                inside = True
            elif view.fn_name == static.fn_name:
                block = pc_block.get(view.pc)
                inside = block in region
            if inside and view.instances == center.instances:
                nested.add(view.pc)
        return nested

    def _contained_functions_cached(self, pc: int,
                                    region: frozenset[int]) -> set[str]:
        """Per-construct cache for :meth:`_contained_functions` (the
        edge-classification path calls it once per edge)."""
        cached = self._contained_cache.get(pc)
        if cached is None:
            cached = self._contained_functions(set(region))
            self._contained_cache[pc] = cached
        return cached

    def _contained_functions(self, region: set[int]) -> set[str]:
        sites = call_sites(self.program)
        pc_block = self._pc_block_map()
        contained: set[str] = set()
        changed = True
        while changed:
            changed = False
            for fn_name, pcs in sites.items():
                if fn_name in contained or fn_name == "main":
                    continue
                def swallowed(site_pc: int) -> bool:
                    if pc_block.get(site_pc) in region:
                        return True
                    return self.program.fn_of(site_pc) in contained
                if pcs and all(swallowed(site) for site in pcs):
                    contained.add(fn_name)
                    changed = True
        return contained

    def _pc_block_map(self) -> dict[int, int]:
        if self._pc_block is None:
            mapping: dict[int, int] = {}
            for block_id, block in self.program.blocks_by_id.items():
                for instr in block.instrs:
                    mapping[instr.pc] = block_id
            self._pc_block = mapping
        return self._pc_block

    # -- Table IV --------------------------------------------------------------------

    def location_conflicts(self, line: int,
                           fn_name: str | None = None) -> ConflictCounts:
        """Violating static RAW/WAW/WAR counts for the construct at a
        source location (Table IV)."""
        views = self.views_at_line(line, fn_name)
        if not views:
            raise KeyError(f"no profiled construct at line {line}")
        view = views[0]
        where = f"{view.fn_name}:{line} ({view.name})"
        return ConflictCounts(
            location=where,
            raw=view.violating_count(DepKind.RAW),
            waw=view.violating_count(DepKind.WAW),
            war=view.violating_count(DepKind.WAR),
        )

    # -- rendering --------------------------------------------------------------------

    def to_text(self, top: int = 10, max_edges: int = 8,
                kinds: tuple[DepKind, ...] = (DepKind.RAW,)) -> str:
        """Fig. 2-style profile listing."""
        lines = [
            f"Profile: {self.stats.instructions} instructions, "
            f"{self.stats.dynamic_instances} dynamic construct instances, "
            f"{self.stats.static_constructs} static constructs",
        ]
        for i, view in enumerate(self.top_constructs(top), start=1):
            lines.append(f"{i}. {view.describe()}")
            lines.extend(view.edge_lines(kinds, max_edges))
        return "\n".join(lines)

    def describe_run(self) -> str:
        s = self.stats
        parts = [
            f"instructions={s.instructions}",
            f"dynamic_constructs={s.dynamic_instances}",
            f"static_constructs={s.static_constructs}",
            f"raw_events={s.raw_events}",
            f"war_events={s.war_events}",
            f"waw_events={s.waw_events}",
            f"pool_capacity={s.pool.capacity}",
            f"max_depth={s.max_index_depth}",
            f"wall={s.wall_seconds:.3f}s",
        ]
        if s.slowdown is not None:
            parts.append(f"slowdown={s.slowdown:.1f}x")
        if s.sampling:
            parts.append(f"sampling={s.sampling}")
        return " ".join(parts)
