"""Source annotation: the paper's "direct guidance" made concrete.

Alchemist's stated contribution over speculative-runtime profilers is
that it "provides direct guidance for safe manual transformations to
break the dependencies it identifies" (§I, Generality). This module
turns a profile plus one chosen construct into an annotated source
listing a programmer can act on line by line:

* ``SPAWN`` at the construct head — annotate as a future;
* ``JOIN`` before each continuation read that a RAW edge reaches —
  the paper's "joined at any possible conflicting reads";
* ``PRIVATIZE`` / ``HOIST`` notes on the lines whose WAR/WAW writes
  conflict with the construct (gzip's ``flag_buf`` copy and
  ``last_flags`` hoist in §II are instances of these two patterns);
* ``BLOCKED`` markers on reads that make asynchronous execution
  unprofitable (violating RAW edges between instances).

The annotator is deliberately textual — the paper targets *manual*
transformation, and a marked-up listing is what its §II walk-through
presents to the reader.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.advisor import Advisor, Recommendation, Verdict
from repro.core.profile_data import DepKind
from repro.core.report import ConstructView, ProfileReport


@dataclass
class LineMarks:
    """Annotations accumulated for one source line."""

    tags: list[str] = field(default_factory=list)

    def add(self, tag: str) -> None:
        if tag not in self.tags:
            self.tags.append(tag)


@dataclass
class AnnotatedSource:
    """The rendered guidance for one construct."""

    view: ConstructView
    recommendation: Recommendation
    source: str
    marks: dict[int, LineMarks]

    def render(self, context: int = 2) -> str:
        """The annotated listing: marked lines plus ``context`` lines
        around each, with a header summarizing the verdict."""
        rec = self.recommendation
        header = [
            f"=== {self.view.describe()} ===",
            f"verdict: {rec.verdict.value.upper()}",
        ]
        if rec.privatize:
            header.append("privatize before spawning: "
                          + ", ".join(rec.privatize))
        lines = self.source.splitlines()
        show: set[int] = set()
        for line_no in self.marks:
            for nearby in range(line_no - context, line_no + context + 1):
                if 1 <= nearby <= len(lines):
                    show.add(nearby)
        body: list[str] = []
        previous = None
        for line_no in sorted(show):
            if previous is not None and line_no != previous + 1:
                body.append("      ...")
            previous = line_no
            text = lines[line_no - 1]
            body.append(f"{line_no:5d} | {text}")
            marks = self.marks.get(line_no)
            if marks is not None:
                indent = " " * 8
                for tag in marks.tags:
                    body.append(f"{indent}^^^ {tag}")
        return "\n".join(header + body)


def annotate(report: ProfileReport, source: str, *,
             line: int | None = None,
             view: ConstructView | None = None) -> AnnotatedSource:
    """Annotate ``source`` with the transformation guidance for one
    construct — chosen by its source ``line`` or passed as a ``view``.

    Raises ``ValueError`` when no profiled construct heads that line.
    """
    if view is None:
        if line is None:
            raise ValueError("need line or view")
        candidates = report.views_at_line(line)
        if not candidates:
            raise ValueError(f"no profiled construct heads line {line}")
        view = candidates[0]
    rec = Advisor(report).assess(view)
    program = report.program
    marks: dict[int, LineMarks] = {}

    def mark(line_no: int, tag: str) -> None:
        marks.setdefault(line_no, LineMarks()).add(tag)

    spawn_note = (f"SPAWN: run {view.name} as a future "
                  f"(Tdur={view.tdur}, {view.instances} instance(s))")
    if rec.verdict is Verdict.BLOCKED:
        spawn_note = (f"DO NOT SPAWN {view.name}: "
                      f"{len(rec.blocking_raw)} RAW edge(s) between "
                      "instances block it")
    mark(view.line, spawn_note)

    for edge in rec.blocking_raw:
        head_line = program.loc_of(edge.head_pc)[0]
        tail_line = program.loc_of(edge.tail_pc)[0]
        mark(tail_line,
             f"BLOCKED: reads {edge.var_hint or '?'} written at line "
             f"{head_line} only Tdep={edge.min_tdep} earlier "
             f"(< Tdur={view.tdur})")

    for edge in rec.join_hints:
        tail_line = program.loc_of(edge.tail_pc)[0]
        mark(tail_line,
             f"JOIN the future before this read of "
             f"{edge.var_hint or '?'} (RAW, Tdep={edge.min_tdep})")

    for kind, action in ((DepKind.WAR, "PRIVATIZE"),
                         (DepKind.WAW, "PRIVATIZE")):
        for edge in view.violating(kind):
            head_line = program.loc_of(edge.head_pc)[0]
            tail_line = program.loc_of(edge.tail_pc)[0]
            base = (edge.var_hint or "?").split("[")[0]
            mark(tail_line,
                 f"{action} {base}: {kind.value} against line "
                 f"{head_line} (Tdep={edge.min_tdep}); give the future "
                 "a private copy or hoist this write past the join")

    return AnnotatedSource(view, rec, source, marks)


def annotate_text(source: str, *, line: int,
                  report: ProfileReport | None = None,
                  context: int = 2) -> str:
    """One-call convenience: profile ``source`` (unless a report is
    supplied) and render the annotated listing for the construct at
    ``line``."""
    if report is None:
        from repro.core.alchemist import Alchemist
        report = Alchemist().profile(source)
    return annotate(report, source, line=line).render(context=context)
