"""The Alchemist profiler (paper §III).

Module map, following the paper's structure:

* :mod:`repro.core.node` / :mod:`repro.core.pool` — construct instances
  and the recycling pool with lazy retirement (Table I);
* :mod:`repro.core.indexing` — the execution-indexing stack
  (instrumentation rules, Fig. 5);
* :mod:`repro.core.shadow` — shadow memory detecting RAW/WAR/WAW
  dependences between instructions;
* :mod:`repro.core.profiler` — the bottom-up profile update (Table II);
* :mod:`repro.core.profile_data` — per-construct profiles with min-Tdep
  edges;
* :mod:`repro.core.tracer` — glues everything to the interpreter's
  tracing interface;
* :mod:`repro.core.report` / :mod:`repro.core.advisor` — ranked output
  and parallelization guidance;
* :mod:`repro.core.treedump` — materialized execution index trees
  (Fig. 4) for small runs;
* :mod:`repro.core.alchemist` — the user-facing facade.
"""

from repro.core.alchemist import Alchemist, ProfileOptions
from repro.core.advisor import Advisor, Recommendation
from repro.core.annotate import AnnotatedSource, annotate, annotate_text
from repro.core.profile_data import DepKind
from repro.core.report import ProfileReport
from repro.core.treedump import IndexTree, record_index_tree

__all__ = [
    "Alchemist",
    "ProfileOptions",
    "Advisor",
    "Recommendation",
    "DepKind",
    "ProfileReport",
    "IndexTree",
    "record_index_tree",
    "AnnotatedSource",
    "annotate",
    "annotate_text",
]
