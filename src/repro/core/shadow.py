"""Shadow memory: per-address access history for dependence detection.

For every traced address the shadow keeps

* the last write: ``(pc, construct node, timestamp)``;
* the most recent read per static reader pc since that write.

A read reports a RAW dependence from the last write. A write reports a
WAR dependence from every recorded read and a WAW dependence from the
previous write, then clears the read set (older reads pair with the
previous write, whose WAR edges were already reported — keeping only the
most recent read per static pc preserves the *minimum* Tdep per static
edge, which is what profiles record).

``clear_range`` forgets state for deallocated stack frames so address
reuse across calls cannot fabricate dependences; the return-value cell
is cleared separately after the caller's read.

Tracked addresses are additionally indexed by bucket (``addr >> 6``,
64-word granularity). ``clear_range`` walks only the buckets the freed
range spans — and within them only the addresses actually tracked — so
tearing down a frame costs time proportional to the frame's own traced
accesses, not to the whole shadow. Before this index, freeing a large
heap block (or any frame while many addresses were tracked) scanned
either the entire range or every tracked address, which made teardown
quadratic for alloc/free-heavy workloads.
"""

from __future__ import annotations

from repro.core.node import ConstructNode

#: A recorded access: (pc, construct node at access time, timestamp).
Access = tuple[int, ConstructNode, int]

#: Bucket granularity: 2**6 = 64 words per bucket.
_BUCKET_BITS = 6


class ShadowMemory:
    """Address -> access history."""

    __slots__ = ("_entries", "_buckets")

    def __init__(self) -> None:
        # addr -> [last_write | None, {reader_pc: (node, t)}]
        self._entries: dict[int, list] = {}
        # (addr >> _BUCKET_BITS) -> set of tracked addrs in that bucket;
        # kept exactly in sync with _entries (insert here on first
        # touch, remove in clear_range).
        self._buckets: dict[int, set[int]] = {}

    def on_read(self, addr: int, pc: int, node: ConstructNode,
                timestamp: int) -> Access | None:
        """Record a read; returns the RAW head (the last write), if any."""
        entry = self._entries.get(addr)
        if entry is None:
            self._entries[addr] = [None, {pc: (node, timestamp)}]
            bucket = self._buckets.get(addr >> _BUCKET_BITS)
            if bucket is None:
                self._buckets[addr >> _BUCKET_BITS] = {addr}
            else:
                bucket.add(addr)
            return None
        entry[1][pc] = (node, timestamp)
        return entry[0]

    def on_write(self, addr: int, pc: int, node: ConstructNode,
                 timestamp: int
                 ) -> tuple[Access | None, dict[int, tuple]]:
        """Record a write; returns (WAW head, WAR heads by reader pc)."""
        entry = self._entries.get(addr)
        if entry is None:
            self._entries[addr] = [(pc, node, timestamp), {}]
            bucket = self._buckets.get(addr >> _BUCKET_BITS)
            if bucket is None:
                self._buckets[addr >> _BUCKET_BITS] = {addr}
            else:
                bucket.add(addr)
            return None, {}
        old_write, reads = entry
        entry[0] = (pc, node, timestamp)
        entry[1] = {}
        return old_write, reads

    def seed_entry(self, addr: int, write: Access | None,
                   reads: dict[int, tuple]) -> None:
        """Install checkpointed pre-segment state for ``addr``.

        Parallel segment replay seeds each tracked address with its
        last write and per-pc reads (nodes replaced by a boundary
        sentinel the segment tracer defers on); from then on the
        ordinary ``on_read``/``on_write``/``clear_range`` discipline
        applies unchanged.
        """
        self._entries[addr] = [write, reads]
        bucket = self._buckets.get(addr >> _BUCKET_BITS)
        if bucket is None:
            self._buckets[addr >> _BUCKET_BITS] = {addr}
        else:
            bucket.add(addr)

    def clear_range(self, lo: int, hi: int) -> None:
        """Forget all state for addresses in ``[lo, hi)``.

        Cost: O(tracked addresses inside the range) plus O(buckets
        spanned / tracked buckets, whichever is smaller).
        """
        if hi <= lo:
            return
        entries = self._entries
        buckets = self._buckets
        lo_bucket = lo >> _BUCKET_BITS
        hi_bucket = (hi - 1) >> _BUCKET_BITS
        if hi_bucket - lo_bucket + 1 <= len(buckets):
            span = range(lo_bucket, hi_bucket + 1)
        else:
            # A huge range over a small shadow: walk the tracked
            # buckets instead of the (mostly empty) bucket range.
            span = [b for b in buckets if lo_bucket <= b <= hi_bucket]
        for b in span:
            bucket = buckets.get(b)
            if bucket is None:
                continue
            if lo <= (b << _BUCKET_BITS) and \
                    ((b + 1) << _BUCKET_BITS) <= hi:
                # Bucket fully covered: drop it wholesale.
                for addr in bucket:
                    del entries[addr]
                del buckets[b]
            else:
                # Boundary bucket: filter.
                doomed = [addr for addr in bucket if lo <= addr < hi]
                if len(doomed) == len(bucket):
                    del buckets[b]
                else:
                    bucket.difference_update(doomed)
                for addr in doomed:
                    del entries[addr]

    def tracked_addresses(self) -> int:
        return len(self._entries)

    def last_write(self, addr: int) -> Access | None:
        entry = self._entries.get(addr)
        return entry[0] if entry is not None else None
