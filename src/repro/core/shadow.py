"""Shadow memory: per-address access history for dependence detection.

For every traced address the shadow keeps

* the last write: ``(pc, construct node, timestamp)``;
* the most recent read per static reader pc since that write.

A read reports a RAW dependence from the last write. A write reports a
WAR dependence from every recorded read and a WAW dependence from the
previous write, then clears the read set (older reads pair with the
previous write, whose WAR edges were already reported — keeping only the
most recent read per static pc preserves the *minimum* Tdep per static
edge, which is what profiles record).

``clear_range`` forgets state for deallocated stack frames so address
reuse across calls cannot fabricate dependences; the return-value cell
is cleared separately after the caller's read.
"""

from __future__ import annotations

from repro.core.node import ConstructNode

#: A recorded access: (pc, construct node at access time, timestamp).
Access = tuple[int, ConstructNode, int]


class ShadowMemory:
    """Address -> access history."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        # addr -> [last_write | None, {reader_pc: (node, t)}]
        self._entries: dict[int, list] = {}

    def on_read(self, addr: int, pc: int, node: ConstructNode,
                timestamp: int) -> Access | None:
        """Record a read; returns the RAW head (the last write), if any."""
        entry = self._entries.get(addr)
        if entry is None:
            self._entries[addr] = [None, {pc: (node, timestamp)}]
            return None
        entry[1][pc] = (node, timestamp)
        return entry[0]

    def on_write(self, addr: int, pc: int, node: ConstructNode,
                 timestamp: int
                 ) -> tuple[Access | None, dict[int, tuple]]:
        """Record a write; returns (WAW head, WAR heads by reader pc)."""
        entry = self._entries.get(addr)
        if entry is None:
            self._entries[addr] = [(pc, node, timestamp), {}]
            return None, {}
        old_write, reads = entry
        entry[0] = (pc, node, timestamp)
        entry[1] = {}
        return old_write, reads

    def clear_range(self, lo: int, hi: int) -> None:
        """Forget all state for addresses in ``[lo, hi)``."""
        entries = self._entries
        if hi - lo < len(entries):
            for addr in range(lo, hi):
                entries.pop(addr, None)
        else:
            for addr in [a for a in entries if lo <= a < hi]:
                del entries[addr]

    def tracked_addresses(self) -> int:
        return len(self._entries)

    def last_write(self, addr: int) -> Access | None:
        entry = self._entries.get(addr)
        return entry[0] if entry is not None else None
