"""Register IR and control-flow graph for MiniC.

The AST is lowered to a register-based IR organized into basic blocks.
Every executed IR instruction advances the profiler's timestamp by one —
this is the reproduction's stand-in for the paper's "number of executed
(binary) instructions".

Public entry points::

    from repro.ir import lower_program, compile_source

    program_ir = compile_source(source)       # lex+parse+lower
"""

from repro.ir.cfg import BasicBlock, FunctionIR, ProgramIR
from repro.ir.lowering import compile_source, lower_program
from repro.ir.printer import format_function, format_program

__all__ = [
    "BasicBlock",
    "FunctionIR",
    "ProgramIR",
    "lower_program",
    "compile_source",
    "format_function",
    "format_program",
]
