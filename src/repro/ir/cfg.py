"""Basic blocks, function CFGs and the assembled program.

Block identifiers are unique across the whole program so interprocedural
tables (pc maps, construct tables) can be flat dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir import instructions as ins

#: Virtual exit node id used by post-dominance analysis. `Ret` terminators
#: have an implicit edge to it.
VIRTUAL_EXIT = -1


class BasicBlock:
    """A straight-line instruction sequence ending in a terminator."""

    def __init__(self, block_id: int, label: str = ""):
        self.id = block_id
        self.label = label or f"B{block_id}"
        self.instrs: list[ins.Instr] = []

    @property
    def terminator(self) -> ins.Instr:
        return self.instrs[-1]

    def successors(self) -> list[int]:
        """Successor block ids (``VIRTUAL_EXIT`` for returns)."""
        term = self.terminator
        if isinstance(term, ins.Branch):
            if term.then_block == term.else_block:
                return [term.then_block]
            return [term.then_block, term.else_block]
        if isinstance(term, ins.Jump):
            return [term.target]
        if isinstance(term, ins.Ret):
            return [VIRTUAL_EXIT]
        raise ValueError(f"block {self.label} lacks a terminator")

    def first_pc(self) -> int:
        return self.instrs[0].pc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock({self.label}, {len(self.instrs)} instrs)"


@dataclass
class ParamInfo:
    """A formal parameter after layout."""

    name: str
    is_array: bool
    slot: ins.Slot


@dataclass
class VarInfo:
    """Layout record for one variable (used for address -> name maps)."""

    name: str
    offset: int
    size: int
    is_array: bool
    init: int | None = None


class FunctionIR:
    """One lowered function."""

    def __init__(self, name: str, returns_value: bool):
        self.name = name
        self.returns_value = returns_value
        self.params: list[ParamInfo] = []
        self.blocks: list[BasicBlock] = []
        #: Frame word count, *including* the return-value cell at offset 0.
        self.frame_size = 1
        #: Number of array-parameter binding table entries.
        self.num_refs = 0
        self.num_regs = 0
        #: Locals layout (offset 0 is the return-value cell, not listed).
        self.locals_layout: list[VarInfo] = []
        #: pc of the first instruction of the entry block; identifies the
        #: procedure construct after :meth:`ProgramIR.finalize`.
        self.entry_pc = -1
        self.line = 0
        self.col = 0

    @property
    def entry_block(self) -> BasicBlock:
        return self.blocks[0]

    def block_map(self) -> dict[int, BasicBlock]:
        return {block.id: block for block in self.blocks}

    def predecessors(self) -> dict[int, list[int]]:
        """Predecessor map including ``VIRTUAL_EXIT``."""
        preds: dict[int, list[int]] = {block.id: [] for block in self.blocks}
        preds[VIRTUAL_EXIT] = []
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block.id)
        return preds


class ProgramIR:
    """The assembled program: functions, global layout, flat pc space."""

    def __init__(self, filename: str = "<input>"):
        self.filename = filename
        self.functions: dict[str, FunctionIR] = {}
        self.globals_layout: list[VarInfo] = []
        self.globals_size = 0
        #: Flat instruction table indexed by pc (after finalize()).
        self.instrs: list[ins.Instr] = []
        #: Block id -> block, across all functions.
        self.blocks_by_id: dict[int, BasicBlock] = {}
        #: Block id -> owning function name.
        self.block_fn: dict[int, str] = {}

    # -- assembly -----------------------------------------------------

    def finalize(self) -> None:
        """Assign pcs, build the flat tables. Must be called exactly once
        after all functions are lowered."""
        if self.instrs:
            raise RuntimeError("ProgramIR.finalize called twice")
        pc = 0
        for fn in self.functions.values():
            for block in fn.blocks:
                if not block.instrs:
                    raise ValueError(
                        f"empty block {block.label} in {fn.name}")
                if not isinstance(block.terminator, ins.TERMINATORS):
                    raise ValueError(
                        f"block {block.label} in {fn.name} lacks terminator")
                self.blocks_by_id[block.id] = block
                self.block_fn[block.id] = fn.name
                for instr in block.instrs:
                    instr.pc = pc
                    instr.fn_name = fn.name
                    self.instrs.append(instr)
                    pc += 1
            fn.entry_pc = fn.entry_block.first_pc()

    # -- queries --------------------------------------------------------

    @property
    def main(self) -> FunctionIR:
        return self.functions["main"]

    def instr_at(self, pc: int) -> ins.Instr:
        return self.instrs[pc]

    def loc_of(self, pc: int) -> tuple[int, int]:
        """Source (line, col) of the instruction at ``pc``."""
        instr = self.instrs[pc]
        return (instr.line, instr.col)

    def fn_of(self, pc: int) -> str:
        return self.instrs[pc].fn_name

    def global_var(self, name: str) -> VarInfo:
        for info in self.globals_layout:
            if info.name == name:
                return info
        raise KeyError(name)

    def global_addr_to_name(self, addr: int) -> str | None:
        """Map a global-segment address to ``name`` or ``name[k]``."""
        for info in self.globals_layout:
            if info.offset <= addr < info.offset + info.size:
                if info.is_array:
                    return f"{info.name}[{addr - info.offset}]"
                return info.name
        return None

    def static_instruction_count(self) -> int:
        return len(self.instrs)
