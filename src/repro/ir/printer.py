"""Human-readable IR dumps, for debugging and golden tests."""

from __future__ import annotations

from repro.ir import instructions as ins
from repro.ir.cfg import FunctionIR, ProgramIR


def format_program(program: ProgramIR) -> str:
    """Dump every function of ``program``."""
    parts = []
    if program.globals_layout:
        lines = ["globals:"]
        for info in program.globals_layout:
            suffix = f"[{info.size}]" if info.is_array else ""
            init = f" = {info.init}" if info.init is not None else ""
            lines.append(f"  @{info.offset} {info.name}{suffix}{init}")
        parts.append("\n".join(lines))
    for fn in program.functions.values():
        parts.append(format_function(fn))
    return "\n\n".join(parts) + "\n"


def format_function(fn: FunctionIR) -> str:
    """Dump one function's blocks and instructions."""
    params = ", ".join(
        f"{p.name}[]" if p.is_array else p.name for p in fn.params)
    header = (f"func {fn.name}({params}) "
              f"frame={fn.frame_size} regs={fn.num_regs}")
    lines = [header]
    for block in fn.blocks:
        lines.append(f"{block.label} (#{block.id}):")
        for instr in block.instrs:
            lines.append(f"  {instr.pc:5d}: {format_instr(instr)}")
    return "\n".join(lines)


def _slot_str(slot: ins.Slot) -> str:
    if isinstance(slot, ins.GlobalSlot):
        return f"@{slot.name}"
    if isinstance(slot, ins.RefSlot):
        return f"&{slot.name}"
    return f"%{slot.name}"


def format_instr(instr: ins.Instr) -> str:
    """One-line rendering of a single instruction."""
    if isinstance(instr, ins.Const):
        return f"r{instr.dst} = {instr.value}"
    if isinstance(instr, ins.Move):
        return f"r{instr.dst} = r{instr.src}"
    if isinstance(instr, ins.BinOp):
        return f"r{instr.dst} = r{instr.lhs} {instr.op} r{instr.rhs}"
    if isinstance(instr, ins.UnOp):
        return f"r{instr.dst} = {instr.op} r{instr.src}"
    if isinstance(instr, ins.Load):
        place = _slot_str(instr.slot)
        if instr.index is not None:
            place += f"[r{instr.index}]"
        return f"r{instr.dst} = load {place}"
    if isinstance(instr, ins.Store):
        place = _slot_str(instr.slot)
        if instr.index is not None:
            place += f"[r{instr.index}]"
        return f"store {place} = r{instr.src}"
    if isinstance(instr, ins.AddrOf):
        return f"r{instr.dst} = addrof {_slot_str(instr.slot)}"
    if isinstance(instr, ins.LoadInd):
        return f"r{instr.dst} = load [r{instr.addr}]"
    if isinstance(instr, ins.StoreInd):
        return f"store [r{instr.addr}] = r{instr.src}"
    if isinstance(instr, ins.Alloc):
        return f"r{instr.dst} = alloc r{instr.size}"
    if isinstance(instr, ins.FreeOp):
        return f"free r{instr.src}"
    if isinstance(instr, ins.Call):
        args = ", ".join(f"r{a}" for a in instr.args)
        dst = f"r{instr.dst} = " if instr.dst is not None else ""
        return f"{dst}call {instr.name}({args})"
    if isinstance(instr, ins.Ret):
        return f"ret r{instr.src}" if instr.src is not None else "ret"
    if isinstance(instr, ins.Branch):
        return (f"br r{instr.cond} ? #{instr.then_block} : "
                f"#{instr.else_block} [{instr.hint}]")
    if isinstance(instr, ins.Jump):
        return f"jmp #{instr.target}"
    if isinstance(instr, ins.Print):
        return "print " + ", ".join(f"r{a}" for a in instr.args)
    if isinstance(instr, ins.AssertOp):
        return f"assert r{instr.cond}"
    return repr(instr)
