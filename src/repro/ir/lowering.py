"""AST -> CFG lowering.

The lowering is syntax-directed and produces the canonical loop shapes the
construct analysis expects:

* ``while``/``for``: a *header* block evaluates the condition and ends in
  the loop `Branch`; the back edge targets the header.
* ``do-while``: the body block is the back-edge target; the condition
  block (back-edge source) ends in the loop `Branch`.
* ``if``/``&&``/``||``/``?:`` always create an explicit join block, so a
  non-loop predicate's immediate post-dominator is its join (or, when an
  arm breaks/continues/returns, a block further out — exactly the irregular
  control flow the paper's post-dominance treatment exists for).

Short-circuit operators and the ternary operator lower to branches, so
they are profiled constructs, as in compiled C.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.errors import SemanticError
from repro.lang.parser import parse_program
from repro.ir import instructions as ins
from repro.ir.cfg import BasicBlock, FunctionIR, ParamInfo, ProgramIR, VarInfo

#: Builtin callables lowered to dedicated instructions.
BUILTINS = ("print", "assert", "malloc", "free")


def compile_source(source: str, filename: str = "<input>") -> ProgramIR:
    """Front-to-back convenience: lex, parse and lower ``source``."""
    return lower_program(parse_program(source, filename), filename)


def lower_program(program: ast.Program, filename: str = "<input>") -> ProgramIR:
    """Lower a parsed program to :class:`ProgramIR` (finalized)."""
    return _ProgramLowerer(program, filename).lower()


class _Signature:
    """Callee information collected before bodies are lowered."""

    def __init__(self, fn: ast.FuncDecl):
        self.name = fn.name
        self.param_is_array = [p.is_array for p in fn.params]
        self.returns_value = fn.returns_value

    def arity(self) -> int:
        return len(self.param_is_array)


class _ProgramLowerer:
    def __init__(self, program: ast.Program, filename: str):
        self.program = program
        self.filename = filename
        self.ir = ProgramIR(filename)
        self.signatures: dict[str, _Signature] = {}
        self.global_slots: dict[str, ins.GlobalSlot] = {}
        self.next_block_id = 0

    def error(self, message: str, node: ast.Node) -> SemanticError:
        return SemanticError(message, node.line, node.col, self.filename)

    def new_block_id(self) -> int:
        block_id = self.next_block_id
        self.next_block_id += 1
        return block_id

    def lower(self) -> ProgramIR:
        self._layout_globals()
        self._collect_signatures()
        for fn in self.program.functions:
            lowerer = _FunctionLowerer(self, fn)
            self.ir.functions[fn.name] = lowerer.lower()
        if "main" not in self.ir.functions:
            raise SemanticError("program has no main()", 0, 0, self.filename)
        self.ir.finalize()
        return self.ir

    def _layout_globals(self) -> None:
        offset = 1  # address 0 is reserved as NULL and never allocated
        for decl in self.program.globals:
            if decl.name in self.global_slots:
                raise self.error(f"duplicate global {decl.name!r}", decl)
            size = 1
            is_array = decl.size is not None
            if is_array:
                size = _const_eval(decl.size, self)
                if size <= 0:
                    raise self.error("array size must be positive", decl)
            init = None
            if decl.init is not None:
                if is_array:
                    raise self.error("array initializers are not supported",
                                     decl)
                init = _const_eval(decl.init, self)
            slot = ins.GlobalSlot(offset, size, decl.name, is_array,
                                  decl.is_pointer)
            self.global_slots[decl.name] = slot
            self.ir.globals_layout.append(
                VarInfo(decl.name, offset, size, is_array, init))
            offset += size
        # globals_size includes the reserved NULL word at address 0.
        self.ir.globals_size = offset

    def _collect_signatures(self) -> None:
        for fn in self.program.functions:
            if fn.name in self.signatures:
                raise self.error(f"duplicate function {fn.name!r}", fn)
            if fn.name in BUILTINS:
                raise self.error(f"{fn.name!r} is a builtin", fn)
            self.signatures[fn.name] = _Signature(fn)
        main = self.signatures.get("main")
        if main is not None and main.param_is_array:
            first = self.program.function("main")
            raise self.error("main() must take no parameters", first)


class _FunctionLowerer:
    """Lowers one function body."""

    def __init__(self, pl: _ProgramLowerer, decl: ast.FuncDecl):
        self.pl = pl
        self.decl = decl
        self.fn = FunctionIR(decl.name, decl.returns_value)
        self.fn.line, self.fn.col = decl.line, decl.col
        self.scopes: list[dict[str, ins.Slot]] = [{}]
        self.next_offset = 1  # offset 0 is the return-value cell
        self.next_ref = 0
        self.next_reg = 0
        self.current: BasicBlock | None = None
        #: break targets — one per open loop *or* switch.
        self.break_targets: list[int] = []
        #: continue targets — one per open loop (switches are skipped).
        self.continue_targets: list[int] = []
        #: goto support: label name -> block, plus definition tracking.
        self.label_blocks: dict[str, BasicBlock] = {}
        self.defined_labels: set[str] = set()
        self.pending_gotos: list[ast.Goto] = []

    # -- plumbing -------------------------------------------------------

    def error(self, message: str, node: ast.Node) -> SemanticError:
        return self.pl.error(message, node)

    def new_reg(self) -> int:
        reg = self.next_reg
        self.next_reg += 1
        return reg

    def new_block(self, label: str) -> BasicBlock:
        block = BasicBlock(self.pl.new_block_id(),
                           f"{self.fn.name}.{label}")
        self.fn.blocks.append(block)
        return block

    def emit(self, instr: ins.Instr) -> ins.Instr:
        if self.current is None:
            # Unreachable code after break/continue/return still gets
            # lowered; it lands in a predecessor-less block.
            self.current = self.new_block("dead")
        self.current.instrs.append(instr)
        return instr

    def terminate(self, instr: ins.Instr) -> None:
        self.emit(instr)
        self.current = None

    # -- symbols ----------------------------------------------------------

    def declare_local(self, node: ast.Node, name: str, size: int,
                      is_array: bool,
                      is_pointer: bool = False) -> ins.LocalSlot:
        if name in self.scopes[-1]:
            raise self.error(f"duplicate declaration of {name!r}", node)
        slot = ins.LocalSlot(self.next_offset, size, name, is_array,
                             is_pointer)
        self.next_offset += size
        self.scopes[-1][name] = slot
        self.fn.locals_layout.append(
            VarInfo(name, slot.offset, size, is_array))
        return slot

    def lookup(self, node: ast.Node, name: str) -> ins.Slot:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        slot = self.pl.global_slots.get(name)
        if slot is not None:
            return slot
        raise self.error(f"undeclared variable {name!r}", node)

    # -- entry point -----------------------------------------------------

    def lower(self) -> FunctionIR:
        entry = self.new_block("entry")
        self.current = entry
        for param in self.decl.params:
            if param.name in self.scopes[-1]:
                raise self.error(f"duplicate parameter {param.name!r}", param)
            if param.is_array:
                slot: ins.Slot = ins.RefSlot(self.next_ref, param.name)
                self.next_ref += 1
            else:
                slot = ins.LocalSlot(self.next_offset, 1, param.name, False,
                                     param.is_pointer)
                self.fn.locals_layout.append(
                    VarInfo(param.name, slot.offset, 1, False))
                self.next_offset += 1
            self.scopes[-1][param.name] = slot
            self.fn.params.append(ParamInfo(param.name, param.is_array, slot))
        for stmt in self.decl.body.stmts:
            self.lower_stmt(stmt)
        if self.current is not None:
            self._emit_implicit_return()
        for goto in self.pending_gotos:
            if goto.name not in self.defined_labels:
                raise self.error(f"goto to undefined label {goto.name!r}",
                                 goto)
        self.fn.frame_size = self.next_offset
        self.fn.num_refs = self.next_ref
        self.fn.num_regs = self.next_reg
        return self.fn

    def _emit_implicit_return(self) -> None:
        line, col = self.decl.line, self.decl.col
        if self.decl.returns_value:
            reg = self.new_reg()
            self.emit(ins.Const(line, col, reg, 0))
            self.terminate(ins.Ret(line, col, reg))
        else:
            self.terminate(ins.Ret(line, col, None))

    # -- statements --------------------------------------------------------

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.scopes.append({})
            for inner in stmt.stmts:
                self.lower_stmt(inner)
            self.scopes.pop()
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.VarDeclStmt):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.break_targets:
                raise self.error("break outside a loop or switch", stmt)
            self.terminate(ins.Jump(stmt.line, stmt.col,
                                    self.break_targets[-1]))
        elif isinstance(stmt, ast.Continue):
            if not self.continue_targets:
                raise self.error("continue outside a loop", stmt)
            self.terminate(ins.Jump(stmt.line, stmt.col,
                                    self.continue_targets[-1]))
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Switch):
            self._lower_switch(stmt)
        elif isinstance(stmt, ast.Label):
            self._lower_label(stmt)
        elif isinstance(stmt, ast.Goto):
            self._lower_goto(stmt)
        else:
            raise self.error(f"cannot lower {type(stmt).__name__}", stmt)

    def _lower_var_decl(self, stmt: ast.VarDeclStmt) -> None:
        is_array = stmt.size is not None
        size = 1
        if is_array:
            size = _const_eval(stmt.size, self.pl)
            if size <= 0:
                raise self.error("array size must be positive", stmt)
            if stmt.init is not None:
                raise self.error("array initializers are not supported", stmt)
        slot = self.declare_local(stmt, stmt.name, size, is_array,
                                  stmt.is_pointer)
        if stmt.init is not None:
            value = self.lower_expr_value(stmt.init)
            self.emit(ins.Store(stmt.line, stmt.col, slot, None, value))

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self.lower_expr_value(stmt.cond)
        then_b = self.new_block("if.then")
        else_b = self.new_block("if.else") if stmt.els is not None else None
        join = self.new_block("if.join")
        target_else = else_b.id if else_b is not None else join.id
        self.terminate(ins.Branch(stmt.line, stmt.col, cond,
                                  then_b.id, target_else, hint="if"))
        self.current = then_b
        self.lower_stmt(stmt.then)
        if self.current is not None:
            self.terminate(ins.Jump(stmt.line, stmt.col, join.id))
        if else_b is not None:
            self.current = else_b
            self.lower_stmt(stmt.els)
            if self.current is not None:
                self.terminate(ins.Jump(stmt.line, stmt.col, join.id))
        self.current = join

    def _lower_while(self, stmt: ast.While) -> None:
        header = self.new_block("while.head")
        body_b = self.new_block("while.body")
        exit_b = self.new_block("while.exit")
        self.terminate(ins.Jump(stmt.line, stmt.col, header.id))
        self.current = header
        cond = self.lower_expr_value(stmt.cond)
        self.terminate(ins.Branch(stmt.line, stmt.col, cond,
                                  body_b.id, exit_b.id, hint="while"))
        self.current = body_b
        self.break_targets.append(exit_b.id)
        self.continue_targets.append(header.id)
        self.lower_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if self.current is not None:
            self.terminate(ins.Jump(stmt.line, stmt.col, header.id))
        self.current = exit_b

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        body_b = self.new_block("do.body")
        cond_b = self.new_block("do.cond")
        exit_b = self.new_block("do.exit")
        self.terminate(ins.Jump(stmt.line, stmt.col, body_b.id))
        self.current = body_b
        self.break_targets.append(exit_b.id)
        self.continue_targets.append(cond_b.id)
        self.lower_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if self.current is not None:
            self.terminate(ins.Jump(stmt.line, stmt.col, cond_b.id))
        self.current = cond_b
        cond = self.lower_expr_value(stmt.cond)
        self.terminate(ins.Branch(stmt.line, stmt.col, cond,
                                  body_b.id, exit_b.id, hint="dowhile"))
        self.current = exit_b

    def _lower_for(self, stmt: ast.For) -> None:
        self.scopes.append({})  # C99 scope for the init declaration
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        header = self.new_block("for.head")
        body_b = self.new_block("for.body")
        step_b = self.new_block("for.step")
        exit_b = self.new_block("for.exit")
        self.terminate(ins.Jump(stmt.line, stmt.col, header.id))
        self.current = header
        if stmt.cond is not None:
            cond = self.lower_expr_value(stmt.cond)
        else:
            cond = self.new_reg()
            self.emit(ins.Const(stmt.line, stmt.col, cond, 1))
        self.terminate(ins.Branch(stmt.line, stmt.col, cond,
                                  body_b.id, exit_b.id, hint="for"))
        self.current = body_b
        self.break_targets.append(exit_b.id)
        self.continue_targets.append(step_b.id)
        self.lower_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if self.current is not None:
            self.terminate(ins.Jump(stmt.line, stmt.col, step_b.id))
        self.current = step_b
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self.terminate(ins.Jump(stmt.line, stmt.col, header.id))
        self.current = exit_b
        self.scopes.pop()

    def _lower_return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            if not self.decl.returns_value:
                raise self.error("void function returns a value", stmt)
            reg = self.lower_expr_value(stmt.value)
            self.terminate(ins.Ret(stmt.line, stmt.col, reg))
        else:
            if self.decl.returns_value:
                raise self.error("non-void function returns no value", stmt)
            self.terminate(ins.Ret(stmt.line, stmt.col, None))

    def _lower_switch(self, stmt: ast.Switch) -> None:
        """Lower ``switch`` to a cascade of equality branches.

        Each test is a profiled non-loop predicate (hint ``switch``).
        Arm bodies are laid out in source order with explicit fall-through
        jumps, so C semantics — including a ``default:`` in the middle —
        are preserved. ``break`` jumps to the join block.
        """
        scrut = self.lower_expr_value(stmt.scrutinee)
        join = self.new_block("switch.join")
        bodies = [self.new_block(f"switch.case{i}")
                  for i in range(len(stmt.cases))]
        default_index = None
        for i, case in enumerate(stmt.cases):
            if case.value is None:
                default_index = i
        fallback = (bodies[default_index].id if default_index is not None
                    else join.id)
        tested = [(i, case) for i, case in enumerate(stmt.cases)
                  if case.value is not None]
        seen_values: set[int] = set()
        for k, (i, case) in enumerate(tested):
            value = _const_eval(case.value, self.pl)
            if value in seen_values:
                raise self.error(f"duplicate case value {value}", case)
            seen_values.add(value)
            const_reg = self.new_reg()
            self.emit(ins.Const(case.line, case.col, const_reg, value))
            cmp_reg = self.new_reg()
            self.emit(ins.BinOp(case.line, case.col, cmp_reg, "==",
                                scrut, const_reg))
            if k + 1 < len(tested):
                next_test = self.new_block(f"switch.test{k + 1}")
                self.terminate(ins.Branch(case.line, case.col, cmp_reg,
                                          bodies[i].id, next_test.id,
                                          hint="switch"))
                self.current = next_test
            else:
                self.terminate(ins.Branch(case.line, case.col, cmp_reg,
                                          bodies[i].id, fallback,
                                          hint="switch"))
        if not tested:
            self.terminate(ins.Jump(stmt.line, stmt.col, fallback))
        self.break_targets.append(join.id)
        for i, case in enumerate(stmt.cases):
            self.current = bodies[i]
            self.scopes.append({})
            for arm_stmt in case.stmts:
                self.lower_stmt(arm_stmt)
            self.scopes.pop()
            if self.current is not None:
                target = bodies[i + 1].id if i + 1 < len(bodies) else join.id
                self.terminate(ins.Jump(case.line, case.col, target))
        self.break_targets.pop()
        self.current = join

    def _label_block(self, name: str) -> BasicBlock:
        block = self.label_blocks.get(name)
        if block is None:
            block = self.new_block(f"label.{name}")
            self.label_blocks[name] = block
        return block

    def _lower_label(self, stmt: ast.Label) -> None:
        if stmt.name in self.defined_labels:
            raise self.error(f"duplicate label {stmt.name!r}", stmt)
        self.defined_labels.add(stmt.name)
        block = self._label_block(stmt.name)
        if self.current is not None:
            self.terminate(ins.Jump(stmt.line, stmt.col, block.id))
        self.current = block

    def _lower_goto(self, stmt: ast.Goto) -> None:
        self.pending_gotos.append(stmt)
        self.terminate(ins.Jump(stmt.line, stmt.col,
                                self._label_block(stmt.name).id))

    # -- expressions -------------------------------------------------------

    def lower_expr_value(self, expr: ast.Expr) -> int:
        reg = self.lower_expr(expr)
        if reg is None:
            raise self.error("void value used in an expression", expr)
        return reg

    def lower_expr(self, expr: ast.Expr) -> int | None:
        """Lower ``expr``; returns the result register, or None for calls
        to void functions/builtins."""
        if isinstance(expr, ast.IntLit):
            reg = self.new_reg()
            self.emit(ins.Const(expr.line, expr.col, reg, expr.value))
            return reg
        if isinstance(expr, ast.VarRef):
            slot = self.lookup(expr, expr.name)
            if isinstance(slot, ins.RefSlot) or slot.is_array:
                # C array decay: an array name in value position is its
                # base address (so `p = buf;` and pointer arithmetic on
                # array names behave as in C).
                reg = self.new_reg()
                self.emit(ins.AddrOf(expr.line, expr.col, reg, slot))
                return reg
            reg = self.new_reg()
            self.emit(ins.Load(expr.line, expr.col, reg, slot, None))
            return reg
        if isinstance(expr, ast.Index):
            slot = self.lookup(expr, expr.name)
            if self._is_pointer_slot(slot):
                addr = self._pointer_element_addr(expr, slot)
                reg = self.new_reg()
                self.emit(ins.LoadInd(expr.line, expr.col, reg, addr))
                return reg
            self._check_indexable(expr, slot)
            index = self.lower_expr_value(expr.index)
            reg = self.new_reg()
            self.emit(ins.Load(expr.line, expr.col, reg, slot, index))
            return reg
        if isinstance(expr, ast.Deref):
            addr = self.lower_expr_value(expr.operand)
            reg = self.new_reg()
            self.emit(ins.LoadInd(expr.line, expr.col, reg, addr))
            return reg
        if isinstance(expr, ast.AddrOf):
            return self._lower_addr_of(expr)
        if isinstance(expr, ast.BinOp):
            lhs = self.lower_expr_value(expr.lhs)
            rhs = self.lower_expr_value(expr.rhs)
            reg = self.new_reg()
            self.emit(ins.BinOp(expr.line, expr.col, reg, expr.op, lhs, rhs))
            return reg
        if isinstance(expr, ast.UnOp):
            src = self.lower_expr_value(expr.operand)
            reg = self.new_reg()
            self.emit(ins.UnOp(expr.line, expr.col, reg, expr.op, src))
            return reg
        if isinstance(expr, ast.LogicalOp):
            return self._lower_logical(expr)
        if isinstance(expr, ast.CondExpr):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self._lower_incdec(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        raise self.error(f"cannot lower {type(expr).__name__}", expr)

    def _check_indexable(self, expr: ast.Index, slot: ins.Slot) -> None:
        if isinstance(slot, ins.RefSlot):
            return
        if not slot.is_array:
            raise self.error(f"scalar {expr.name!r} cannot be indexed", expr)

    def _is_pointer_slot(self, slot: ins.Slot) -> bool:
        """True for declared ``int *p`` names (not arrays, not refs)."""
        return (not isinstance(slot, ins.RefSlot) and not slot.is_array
                and slot.is_pointer)

    def _pointer_element_addr(self, expr: ast.Index, slot: ins.Slot) -> int:
        """Lower ``p[i]`` address computation: read ``p``, add ``i``.

        The read of the pointer variable itself is a traced load — exactly
        what a compiled C program does, so dependences *on the pointer*
        (e.g. a pointer being rewired) are profiled distinctly from
        dependences on the pointed-to data.
        """
        base = self.new_reg()
        self.emit(ins.Load(expr.line, expr.col, base, slot, None))
        index = self.lower_expr_value(expr.index)
        addr = self.new_reg()
        self.emit(ins.BinOp(expr.line, expr.col, addr, "+", base, index))
        return addr

    def _lower_addr_of(self, expr: ast.AddrOf) -> int:
        operand = expr.operand
        if isinstance(operand, ast.Deref):
            # &*e is just e.
            return self.lower_expr_value(operand.operand)
        if isinstance(operand, ast.VarRef):
            slot = self.lookup(operand, operand.name)
            reg = self.new_reg()
            self.emit(ins.AddrOf(expr.line, expr.col, reg, slot))
            return reg
        if isinstance(operand, ast.Index):
            slot = self.lookup(operand, operand.name)
            if self._is_pointer_slot(slot):
                return self._pointer_element_addr(operand, slot)
            self._check_indexable(operand, slot)
            base = self.new_reg()
            self.emit(ins.AddrOf(expr.line, expr.col, base, slot))
            index = self.lower_expr_value(operand.index)
            addr = self.new_reg()
            self.emit(ins.BinOp(expr.line, expr.col, addr, "+", base, index))
            return addr
        raise self.error("'&' needs a variable, array element, or "
                         "dereference", expr)

    def _lower_logical(self, expr: ast.LogicalOp) -> int:
        result = self.new_reg()
        lhs = self.lower_expr_value(expr.lhs)
        rhs_b = self.new_block("sc.rhs")
        short_b = self.new_block("sc.short")
        join = self.new_block("sc.join")
        if expr.op == "&&":
            self.terminate(ins.Branch(expr.line, expr.col, lhs,
                                      rhs_b.id, short_b.id, hint="logical"))
            short_value = 0
        else:
            self.terminate(ins.Branch(expr.line, expr.col, lhs,
                                      short_b.id, rhs_b.id, hint="logical"))
            short_value = 1
        self.current = rhs_b
        rhs = self.lower_expr_value(expr.rhs)
        self.emit(ins.UnOp(expr.line, expr.col, result, "tobool", rhs))
        self.terminate(ins.Jump(expr.line, expr.col, join.id))
        self.current = short_b
        self.emit(ins.Const(expr.line, expr.col, result, short_value))
        self.terminate(ins.Jump(expr.line, expr.col, join.id))
        self.current = join
        return result

    def _lower_ternary(self, expr: ast.CondExpr) -> int:
        result = self.new_reg()
        cond = self.lower_expr_value(expr.cond)
        then_b = self.new_block("sel.then")
        else_b = self.new_block("sel.else")
        join = self.new_block("sel.join")
        self.terminate(ins.Branch(expr.line, expr.col, cond,
                                  then_b.id, else_b.id, hint="ternary"))
        self.current = then_b
        value = self.lower_expr_value(expr.then)
        self.emit(ins.Move(expr.line, expr.col, result, value))
        self.terminate(ins.Jump(expr.line, expr.col, join.id))
        self.current = else_b
        value = self.lower_expr_value(expr.els)
        self.emit(ins.Move(expr.line, expr.col, result, value))
        self.terminate(ins.Jump(expr.line, expr.col, join.id))
        self.current = join
        return result

    def _resolve_target(self, target: ast.Expr
                        ) -> tuple[ins.Slot, int | None] | int:
        """Resolve an lvalue, evaluating address subexpressions exactly
        once.

        Returns ``(slot, index register)`` for direct targets, or a bare
        register holding the word address for indirect targets (``*e``
        and ``p[i]`` through a declared pointer).
        """
        if isinstance(target, ast.VarRef):
            slot = self.lookup(target, target.name)
            if isinstance(slot, ins.RefSlot) or slot.is_array:
                raise self.error(
                    f"cannot assign to array {target.name!r}", target)
            return slot, None
        if isinstance(target, ast.Index):
            slot = self.lookup(target, target.name)
            if self._is_pointer_slot(slot):
                return self._pointer_element_addr(target, slot)
            self._check_indexable(target, slot)
            return slot, self.lower_expr_value(target.index)
        if isinstance(target, ast.Deref):
            return self.lower_expr_value(target.operand)
        raise self.error("invalid assignment target", target)

    def _target_load(self, node: ast.Expr, resolved) -> int:
        reg = self.new_reg()
        if isinstance(resolved, tuple):
            slot, index = resolved
            self.emit(ins.Load(node.line, node.col, reg, slot, index))
        else:
            self.emit(ins.LoadInd(node.line, node.col, reg, resolved))
        return reg

    def _target_store(self, node: ast.Expr, resolved, value: int) -> None:
        if isinstance(resolved, tuple):
            slot, index = resolved
            self.emit(ins.Store(node.line, node.col, slot, index, value))
        else:
            self.emit(ins.StoreInd(node.line, node.col, resolved, value))

    def _lower_assign(self, expr: ast.Assign) -> int:
        resolved = self._resolve_target(expr.target)
        if expr.op is None:
            value = self.lower_expr_value(expr.value)
            self._target_store(expr, resolved, value)
            return value
        old = self._target_load(expr, resolved)
        value = self.lower_expr_value(expr.value)
        result = self.new_reg()
        self.emit(ins.BinOp(expr.line, expr.col, result, expr.op, old, value))
        self._target_store(expr, resolved, result)
        return result

    def _lower_incdec(self, expr: ast.IncDec) -> int:
        resolved = self._resolve_target(expr.target)
        old = self._target_load(expr, resolved)
        one = self.new_reg()
        self.emit(ins.Const(expr.line, expr.col, one, 1))
        new = self.new_reg()
        op = "+" if expr.op == "++" else "-"
        self.emit(ins.BinOp(expr.line, expr.col, new, op, old, one))
        self._target_store(expr, resolved, new)
        return new if expr.is_prefix else old

    def _lower_call(self, expr: ast.Call) -> int | None:
        if expr.name == "print":
            regs = [self.lower_expr_value(a) for a in expr.args]
            self.emit(ins.Print(expr.line, expr.col, regs))
            return None
        if expr.name == "assert":
            if len(expr.args) != 1:
                raise self.error("assert takes exactly one argument", expr)
            reg = self.lower_expr_value(expr.args[0])
            self.emit(ins.AssertOp(expr.line, expr.col, reg))
            return None
        if expr.name == "malloc":
            if len(expr.args) != 1:
                raise self.error("malloc takes exactly one argument (word "
                                 "count)", expr)
            size = self.lower_expr_value(expr.args[0])
            reg = self.new_reg()
            self.emit(ins.Alloc(expr.line, expr.col, reg, size))
            return reg
        if expr.name == "free":
            if len(expr.args) != 1:
                raise self.error("free takes exactly one argument", expr)
            reg = self.lower_expr_value(expr.args[0])
            self.emit(ins.FreeOp(expr.line, expr.col, reg))
            return None
        sig = self.pl.signatures.get(expr.name)
        if sig is None:
            raise self.error(f"unknown function {expr.name!r}", expr)
        if len(expr.args) != len(sig.param_is_array):
            raise self.error(
                f"{expr.name}() expects {len(sig.param_is_array)} "
                f"argument(s), got {len(expr.args)}", expr)
        arg_regs: list[int] = []
        for arg, is_array in zip(expr.args, sig.param_is_array):
            if is_array:
                arg_regs.append(self._lower_array_arg(arg, expr.name))
            else:
                arg_regs.append(self.lower_expr_value(arg))
        dst = self.new_reg() if sig.returns_value else None
        self.emit(ins.Call(expr.line, expr.col, dst, expr.name, arg_regs))
        return dst

    def _lower_array_arg(self, arg: ast.Expr, callee: str) -> int:
        """Lower an argument bound to an ``int a[]`` parameter.

        An array name decays to its base address; any other expression
        (``&a[i]``, a pointer variable, ``malloc(n)``) is passed as a
        word address — the interior-pointer pattern of the paper's gzip
        example, ``flush_block(&window[...])``.
        """
        if isinstance(arg, ast.VarRef):
            slot = self.lookup(arg, arg.name)
            if isinstance(slot, ins.RefSlot) or slot.is_array:
                reg = self.new_reg()
                self.emit(ins.AddrOf(arg.line, arg.col, reg, slot))
                return reg
            if not slot.is_pointer:
                raise self.error(
                    f"{arg.name!r} is a scalar but {callee}() wants an "
                    "array or pointer", arg)
        return self.lower_expr_value(arg)


def _const_eval(expr: ast.Expr, pl: _ProgramLowerer) -> int:
    """Evaluate a compile-time constant expression (sizes, global inits)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.UnOp):
        value = _const_eval(expr.operand, pl)
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(value == 0)
    if isinstance(expr, ast.BinOp):
        lhs = _const_eval(expr.lhs, pl)
        rhs = _const_eval(expr.rhs, pl)
        ops = {
            "+": lambda: lhs + rhs,
            "-": lambda: lhs - rhs,
            "*": lambda: lhs * rhs,
            "/": lambda: _c_div(lhs, rhs),
            "%": lambda: _c_rem(lhs, rhs),
            "<<": lambda: lhs << (rhs & 63),
            ">>": lambda: lhs >> (rhs & 63),
            "&": lambda: lhs & rhs,
            "|": lambda: lhs | rhs,
            "^": lambda: lhs ^ rhs,
        }
        if expr.op in ops:
            return ops[expr.op]()
    raise pl.error("not a constant expression", expr)


def _c_div(a: int, b: int) -> int:
    """C99 division: truncation toward zero."""
    if b == 0:
        raise ZeroDivisionError("constant division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _c_rem(a: int, b: int) -> int:
    """C99 remainder: ``a - (a/b)*b``."""
    return a - _c_div(a, b) * b
