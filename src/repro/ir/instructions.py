"""IR instruction set.

Instructions operate on per-activation virtual registers (plain integers)
and on *slots* describing where variables live:

* :class:`GlobalSlot` — program-wide offset into the global segment;
* :class:`LocalSlot` — frame-relative offset (scalars and local arrays);
* :class:`RefSlot` — an array parameter, bound at call time to the base
  address of the caller's array (this is how MiniC gets aliasing).

Each instruction receives a globally unique ``pc`` when the program is
assembled (:meth:`repro.ir.cfg.ProgramIR.finalize`); ``pc`` is the key the
profiler uses for static constructs and dependence end-points, standing in
for the paper's machine-code program counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Slots
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GlobalSlot:
    """A global scalar (size 1) or array at ``offset`` in the global
    segment. ``is_pointer`` marks ``int *p`` declarations, which changes
    how indexing through the name lowers (indirect rather than direct)."""

    offset: int
    size: int
    name: str
    is_array: bool
    is_pointer: bool = False


@dataclass(frozen=True)
class LocalSlot:
    """A local scalar or array at frame-relative ``offset``."""

    offset: int
    size: int
    name: str
    is_array: bool
    is_pointer: bool = False


@dataclass(frozen=True)
class RefSlot:
    """An array parameter; ``ref_index`` selects the frame's binding table
    entry holding the base address of the argument array."""

    ref_index: int
    name: str


Slot = GlobalSlot | LocalSlot | RefSlot


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------

@dataclass
class Instr:
    """Base instruction. ``pc`` and ``fn_name`` are assigned at assembly."""

    line: int
    col: int
    pc: int = field(default=-1, init=False, compare=False)
    fn_name: str = field(default="", init=False, compare=False)

    opcode = "instr"

    @property
    def loc(self) -> tuple[int, int]:
        return (self.line, self.col)


@dataclass
class Const(Instr):
    """``dst = value``."""

    dst: int = 0
    value: int = 0
    opcode = "const"


@dataclass
class Move(Instr):
    """``dst = src`` (register copy)."""

    dst: int = 0
    src: int = 0
    opcode = "move"


@dataclass
class BinOp(Instr):
    """``dst = lhs <op> rhs`` with C-like 64-bit signed semantics."""

    dst: int = 0
    op: str = "+"
    lhs: int = 0
    rhs: int = 0
    opcode = "binop"


@dataclass
class UnOp(Instr):
    """``dst = <op> src`` where op is ``-``, ``~``, ``!`` or ``tobool``."""

    dst: int = 0
    op: str = "-"
    src: int = 0
    opcode = "unop"


@dataclass
class Load(Instr):
    """``dst = slot`` (scalar) or ``dst = slot[index]`` (array element).

    Emits a traced memory *read* event.
    """

    dst: int = 0
    slot: Slot = None  # type: ignore[assignment]
    index: int | None = None  # register holding the element index
    opcode = "load"


@dataclass
class Store(Instr):
    """``slot = src`` or ``slot[index] = src``; a traced memory *write*."""

    slot: Slot = None  # type: ignore[assignment]
    index: int | None = None
    src: int = 0
    opcode = "store"


@dataclass
class AddrOf(Instr):
    """``dst = &slot[0]`` — materialize a variable's base address
    (untraced; address arithmetic is not a memory access)."""

    dst: int = 0
    slot: Slot = None  # type: ignore[assignment]
    opcode = "addrof"


@dataclass
class LoadInd(Instr):
    """``dst = mem[addr]`` — indirect load through a pointer register.

    The address is validated against live memory (globals, live stack,
    live heap blocks) and emits a traced *read*, so dependences through
    aliased pointers are observed exactly like direct accesses.
    """

    dst: int = 0
    addr: int = 0  # register holding the word address
    opcode = "loadind"


@dataclass
class StoreInd(Instr):
    """``mem[addr] = src`` — indirect store through a pointer register;
    a traced, validated *write*."""

    addr: int = 0
    src: int = 0
    opcode = "storeind"


@dataclass
class Alloc(Instr):
    """``dst = malloc(size)`` — allocate ``size`` words of zeroed heap.

    The block is registered so indirect accesses are validity-checked and
    reports can name heap addresses (``heap#3[k]``).
    """

    dst: int = 0
    size: int = 0  # register holding the word count
    opcode = "alloc"


@dataclass
class FreeOp(Instr):
    """``free(src)`` — release a heap block.

    The profiler is told to forget the block's shadow state, so reuse of
    the addresses by a later ``malloc`` cannot fabricate dependences
    (mirroring the stack-frame treatment).
    """

    src: int = 0
    opcode = "free"


@dataclass
class Call(Instr):
    """Call ``name`` with argument registers ``args``.

    For value-returning callees the result is read from the callee's
    return-value cell (a traced read attributed to this instruction's pc,
    reproducing the paper's return-value dependences, e.g. gzip's
    ``line 29 -> line 9, Tdep=1``) and placed in ``dst``.
    """

    dst: int | None = None
    name: str = ""
    args: list[int] = field(default_factory=list)
    opcode = "call"


@dataclass
class Ret(Instr):
    """Return, optionally writing ``src`` to the frame's return-value cell
    (a traced write)."""

    src: int | None = None
    opcode = "ret"


@dataclass
class Branch(Instr):
    """Conditional two-way branch on register ``cond``.

    Every Branch is a *predicate* in the paper's sense and therefore heads
    a profiled construct. ``hint`` records the syntactic origin (``while``,
    ``for``, ``dowhile``, ``if``, ``logical``, ``ternary``) — used only for
    reporting and for cross-validating the CFG-based loop classification.
    """

    cond: int = 0
    then_block: int = -1
    else_block: int = -1
    hint: str = "if"
    opcode = "branch"


@dataclass
class Jump(Instr):
    """Unconditional jump."""

    target: int = -1
    opcode = "jump"


@dataclass
class Print(Instr):
    """Print the argument registers (the only observable output of MiniC)."""

    args: list[int] = field(default_factory=list)
    opcode = "print"


@dataclass
class AssertOp(Instr):
    """Trap if register ``cond`` is zero — used by test workloads."""

    cond: int = 0
    opcode = "assert"


TERMINATORS = (Branch, Jump, Ret)
