"""Package version, kept importable without dragging in heavy modules."""

__version__ = "1.1.0"
