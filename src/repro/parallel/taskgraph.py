"""Task-graph extraction from a profiled sequential run.

Pick a construct (typically a loop — its instances are iterations, per
the paper's rule 4, or a procedure — its instances are calls). Drive
one event stream through :class:`TaskGraphTracer` — a live interpreter
run (:class:`LiveSource`) or a recorded trace replayed without
re-execution (:class:`TraceSource`); the two produce identical graphs
because the tracer only consumes hook events. The run is partitioned
into

    serial[0] task[0] serial[1] task[1] ... task[n-1] serial[n]

where ``task[k]`` is the k-th instance of the chosen construct and the
serial pieces are everything in between (prologue, per-iteration glue,
epilogue). Memory accesses are tagged with the segment they occur in;
dependences between different tags become edges:

* task -> task (RAW): the later task cannot start before the earlier
  finishes;
* task -> serial (RAW): the serial segment joins on the task (the
  paper's "join the future at the first conflicting read");
* WAR/WAW edges are collected separately — they vanish under the
  paper's privatization transformations and are only enforced in the
  no-privatization ablation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.constructs import ConstructTable
from repro.core.tracer import AlchemistTracer
from repro.ir.cfg import ProgramIR
from repro.runtime.interpreter import Interpreter
from repro.runtime.tracing import TeeTracer, Tracer

#: Tag for "currently in serial segment k": encoded as -(k + 1).
def _serial_tag(segment: int) -> int:
    return -(segment + 1)


def _is_serial(tag: int) -> bool:
    return tag < 0


def _segment_of(tag: int) -> int:
    return -tag - 1


@dataclass
class TaskNode:
    """One instance of the parallelized construct."""

    index: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class TaskGraph:
    """Everything the simulator needs."""

    target_pc: int
    total_time: int
    tasks: list[TaskNode] = field(default_factory=list)
    #: serial[k] is the instruction count before task k; serial[n] is the
    #: epilogue. len(serial) == len(tasks) + 1.
    serial: list[int] = field(default_factory=list)
    #: (earlier task, later task) RAW precedence edges.
    task_deps: set[tuple[int, int]] = field(default_factory=set)
    #: serial segment k joins on these tasks before it may run.
    joins: dict[int, set[int]] = field(default_factory=dict)
    #: WAR/WAW counterparts, enforced only without privatization.
    anti_task_deps: set[tuple[int, int]] = field(default_factory=set)
    anti_joins: dict[int, set[int]] = field(default_factory=dict)

    @property
    def task_time(self) -> int:
        return sum(t.duration for t in self.tasks)

    @property
    def serial_time(self) -> int:
        return sum(self.serial)

    def parallel_fraction(self) -> float:
        return self.task_time / self.total_time if self.total_time else 0.0


class TaskGraphTracer(AlchemistTracer):
    """Tags every memory access with its task/serial segment and records
    cross-tag dependences. Reuses the Alchemist indexing machinery to
    delimit construct instances; the expensive per-construct dependence
    profiling is replaced by the cheaper tag shadow."""

    def __init__(self, table: ConstructTable, target_pc: int,
                 pool_size: int = 4096,
                 skip_global_addrs: frozenset[int] = frozenset(),
                 induction_offsets: frozenset[int] = frozenset()):
        super().__init__(table, pool_size)
        if target_pc not in table.by_pc:
            raise KeyError(f"pc {target_pc} is not a construct head")
        self.target_pc = target_pc
        #: Privatized globals: accesses to them constrain nothing (the
        #: paper's per-thread copies of ivec / errors / sample counters).
        self.skip_global_addrs = skip_global_addrs
        #: Frame offsets of the loop's induction variables. A compiled
        #: loop keeps these in registers, and iteration distribution
        #: rewrites them per-thread; either way they don't serialize.
        self.induction_offsets = induction_offsets
        self._skip_addrs: set[int] = set(skip_global_addrs)
        self.tasks: list[TaskNode] = []
        self.task_deps: set[tuple[int, int]] = set()
        self.joins: dict[int, set[int]] = {}
        self.anti_task_deps: set[tuple[int, int]] = set()
        self.anti_joins: dict[int, set[int]] = {}
        self._target_depth = 0
        self._current = _serial_tag(0)
        self._open_start = 0
        # addr -> [write_tag, {read tags}]
        self._tag_shadow: dict[int, list] = {}
        self.stack.push_observer = self._on_push
        self.stack.pop_observer = self._on_pop

    # -- instance boundaries ----------------------------------------------

    def _on_push(self, static, timestamp: int) -> None:
        if static.pc != self.target_pc:
            return
        self._target_depth += 1
        if self._target_depth == 1:
            self._current = len(self.tasks)
            self._open_start = timestamp
            if self.induction_offsets and self.memory is not None:
                frames = self.memory.frames
                if frames:
                    base = frames[-1].base
                    self._skip_addrs = set(self.skip_global_addrs)
                    self._skip_addrs.update(
                        base + off for off in self.induction_offsets)

    def _on_pop(self, node, timestamp: int) -> None:
        if node.static.pc != self.target_pc:
            return
        self._target_depth -= 1
        if self._target_depth == 0:
            index = len(self.tasks)
            self.tasks.append(TaskNode(index, self._open_start, timestamp))
            self._current = _serial_tag(index + 1)

    # -- tagged dependence tracking ------------------------------------------

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        if addr in self._skip_addrs:
            return
        cur = self._current
        entry = self._tag_shadow.get(addr)
        if entry is None:
            self._tag_shadow[addr] = [None, {cur}]
            return
        writer = entry[0]
        if writer is not None and writer != cur:
            self._record(writer, cur, anti=False)
        entry[1].add(cur)

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        if addr in self._skip_addrs:
            return
        cur = self._current
        entry = self._tag_shadow.get(addr)
        if entry is None:
            self._tag_shadow[addr] = [cur, set()]
            return
        writer, readers = entry
        for reader in readers:
            if reader != cur:
                self._record(reader, cur, anti=True)
        if writer is not None and writer != cur:
            self._record(writer, cur, anti=True)
        entry[0] = cur
        entry[1] = set()

    def _record(self, src_tag: int, dst_tag: int, anti: bool) -> None:
        """A dependence from code tagged ``src_tag`` to ``dst_tag``."""
        deps = self.anti_task_deps if anti else self.task_deps
        joins = self.anti_joins if anti else self.joins
        if _is_serial(src_tag):
            # Serial code runs on the main thread in program order; a
            # dependence out of it is satisfied by construction.
            return
        if _is_serial(dst_tag):
            joins.setdefault(_segment_of(dst_tag), set()).add(src_tag)
        elif src_tag < dst_tag:
            deps.add((src_tag, dst_tag))

    def on_frame_free(self, lo: int, hi: int) -> None:
        super().on_frame_free(lo, hi)
        shadow = self._tag_shadow
        if hi - lo < len(shadow):
            for addr in range(lo, hi):
                shadow.pop(addr, None)
        else:
            for addr in [a for a in shadow if lo <= a < hi]:
                del shadow[addr]

    # -- result ---------------------------------------------------------------

    def graph(self) -> TaskGraph:
        total = self.final_time
        serial = []
        prev_end = 0
        for task in self.tasks:
            serial.append(task.start - prev_end)
            prev_end = task.end
        serial.append(total - prev_end)
        return TaskGraph(
            target_pc=self.target_pc,
            total_time=total,
            tasks=list(self.tasks),
            serial=serial,
            task_deps=set(self.task_deps),
            joins={k: set(v) for k, v in self.joins.items()},
            anti_task_deps=set(self.anti_task_deps),
            anti_joins={k: set(v) for k, v in self.anti_joins.items()},
        )


def induction_offsets_of(program: ProgramIR, target_pc: int) -> frozenset[int]:
    """Frame offsets of the target loop's induction variables.

    A local scalar stored in one of the loop's *control blocks* — the
    header or a back-edge source (the ``for`` step block, a ``while``
    body's trailing increment) — is loop control: a compiled binary
    keeps it in a register and iteration distribution rewrites it
    per-thread, so its accesses must not serialize the task graph.
    Returns the empty set for non-loop targets.
    """
    from repro.analysis.constructs import loop_control_stores
    from repro.analysis.loops import find_loops  # local import: cycle-free

    table = ConstructTable(program)
    static = table.by_pc[target_pc]
    if not static.is_loop:
        return frozenset()
    fn = program.functions[static.fn_name]
    loop = next((l for l in find_loops(fn)
                 if l.canonical_branch_pc == target_pc), None)
    if loop is None:
        return frozenset()
    slots = loop_control_stores(fn.block_map(), static.block_id, loop)
    return frozenset(slot.offset for slot in slots)


def resolve_private_globals(program: ProgramIR,
                            names: tuple[str, ...]) -> frozenset[int]:
    """Addresses of privatized global variables (whole arrays included)."""
    addrs: set[int] = set()
    for name in names:
        try:
            info = program.global_var(name)
        except KeyError:
            known = ", ".join(v.name for v in program.globals_layout) \
                or "none"
            raise ValueError(
                f"no global variable named {name!r} to privatize "
                f"(known globals: {known})") from None
        addrs.update(range(info.offset, info.offset + info.size))
    return frozenset(addrs)


# ---------------------------------------------------------------------------
# Event sources: where the hook stream comes from
# ---------------------------------------------------------------------------

class LiveSource:
    """Event source that executes ``program`` under the interpreter."""

    def __init__(self, program: ProgramIR, max_steps: int | None = None):
        self.program = program
        self.max_steps = max_steps

    def drive(self, tracers: list[Tracer]) -> None:
        tracer = tracers[0] if len(tracers) == 1 else TeeTracer(tracers)
        if self.max_steps is None:
            Interpreter(self.program, tracer).run()
        else:
            Interpreter(self.program, tracer, self.max_steps).run()


class TraceSource:
    """Event source that replays a recorded trace — no re-execution.

    The program is recompiled once from the digest-checked source
    embedded in the trace header unless the caller already has it.
    Every tracer observes the exact hook stream the recording captured,
    so graphs extracted here equal the live ones event for event.
    """

    def __init__(self, path: str | os.PathLike,
                 program: ProgramIR | None = None):
        self.path = os.fspath(path)
        if program is None:
            from repro.ir.lowering import compile_source
            from repro.trace.events import source_digest
            from repro.trace.reader import TraceReader

            with TraceReader(self.path) as reader:
                header = reader.header
            if source_digest(header.source) != header.digest:
                from repro.trace.events import TraceError

                raise TraceError(
                    f"{self.path}: embedded source does not match the "
                    "header digest (corrupt trace)")
            program = compile_source(header.source, header.filename)
        self.program = program

    def drive(self, tracers: list[Tracer]) -> None:
        from repro.trace.reader import TraceReader
        from repro.trace.replay import ReplayEngine

        with TraceReader(self.path) as reader:
            ReplayEngine(reader, self.program).run(tracers)


def extract_task_graphs(source: "LiveSource | TraceSource",
                        targets: Mapping[int, tuple[str, ...]]
                                 | Iterable[int],
                        pool_size: int = 4096,
                        auto_induction: bool = True
                        ) -> dict[int, TaskGraph]:
    """Extract task graphs for several candidate constructs in ONE pass.

    ``targets`` maps construct head pc -> globals to privatize for that
    candidate (an iterable of pcs means no privatization). Each target
    gets its own :class:`TaskGraphTracer`; all of them ride the same
    event stream, so the cost of the sweep is one execution or one
    replay regardless of how many candidates are assessed.
    """
    if not isinstance(targets, Mapping):
        targets = {pc: () for pc in targets}
    program = source.program
    table = ConstructTable(program)
    tracers: dict[int, TaskGraphTracer] = {}
    for pc, private_vars in targets.items():
        skip = resolve_private_globals(program, tuple(private_vars))
        induction = (induction_offsets_of(program, pc)
                     if auto_induction else frozenset())
        tracers[pc] = TaskGraphTracer(table, pc, pool_size, skip,
                                      induction)
    if tracers:
        source.drive(list(tracers.values()))
    return {pc: tracer.graph() for pc, tracer in tracers.items()}


def extract_task_graph(program: ProgramIR, target_pc: int,
                       pool_size: int = 4096,
                       private_vars: tuple[str, ...] = (),
                       auto_induction: bool = True) -> TaskGraph:
    """Run ``program`` once and extract the task graph for ``target_pc``.

    Compatibility shim over :func:`extract_task_graphs` with a
    :class:`LiveSource`; ``private_vars`` names globals the (simulated)
    transformation gives each thread a private copy of;
    ``auto_induction`` additionally skips the loop's own control
    variables.
    """
    graphs = extract_task_graphs(
        LiveSource(program), {target_pc: tuple(private_vars)},
        pool_size=pool_size, auto_induction=auto_induction)
    return graphs[target_pc]
