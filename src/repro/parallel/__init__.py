"""Future-execution simulation (reproduces the paper's Table V).

The paper parallelizes constructs by hand with pthreads and measures
wall-clock speedups on a 4-core Opteron. This reproduction extracts the
*task graph* of a chosen construct from a profiled sequential run —
construct instances become tasks, code between them becomes a serial
chain, profiled dependences become precedence/join constraints — and
list-schedules it on K simulated workers. The ratio of sequential to
simulated-parallel instruction time is the predicted speedup.

WAR/WAW constraints can be dropped (``privatize=True``) to model the
paper's privatization transformations; keeping them is the ablation
showing why those transformations matter.
"""

from repro.parallel.estimator import (EstimatorError, SpeedupResult,
                                      estimate_speedup, find_construct,
                                      simulate_speedup)
from repro.parallel.simulator import FutureSimulator, ScheduleResult
from repro.parallel.taskgraph import (LiveSource, TaskGraph,
                                      TaskGraphTracer, TaskNode,
                                      TraceSource, extract_task_graph,
                                      extract_task_graphs)

__all__ = [
    "TaskGraph",
    "TaskGraphTracer",
    "TaskNode",
    "LiveSource",
    "TraceSource",
    "extract_task_graph",
    "extract_task_graphs",
    "FutureSimulator",
    "ScheduleResult",
    "SpeedupResult",
    "EstimatorError",
    "estimate_speedup",
    "find_construct",
    "simulate_speedup",
]
