"""Future-execution simulation (reproduces the paper's Table V).

The paper parallelizes constructs by hand with pthreads and measures
wall-clock speedups on a 4-core Opteron. This reproduction extracts the
*task graph* of a chosen construct from a profiled sequential run —
construct instances become tasks, code between them becomes a serial
chain, profiled dependences become precedence/join constraints — and
list-schedules it on K simulated workers. The ratio of sequential to
simulated-parallel instruction time is the predicted speedup.

WAR/WAW constraints can be dropped (``privatize=True``) to model the
paper's privatization transformations; keeping them is the ablation
showing why those transformations matter.
"""

from repro.parallel.estimator import SpeedupResult, estimate_speedup
from repro.parallel.simulator import FutureSimulator, ScheduleResult
from repro.parallel.taskgraph import TaskGraph, TaskGraphTracer, TaskNode

__all__ = [
    "TaskGraph",
    "TaskGraphTracer",
    "TaskNode",
    "FutureSimulator",
    "ScheduleResult",
    "SpeedupResult",
    "estimate_speedup",
]
