"""Discrete future-execution schedule simulation.

Models the paper's execution strategy (§II, Fig. 1): the main thread
runs the serial chain; at each point where the sequential program would
execute an instance of the parallelized construct, the instance is
spawned as a future onto one of K workers. A future cannot start before
its spawn point, a free worker, and its producer tasks; a serial segment
cannot run before the tasks it joins on (the claim points).

All times are in instructions, the same clock the profiler uses, so
``speedup = T_seq / makespan`` is directly comparable across runs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.parallel.taskgraph import TaskGraph


@dataclass
class ScheduleResult:
    """Outcome of one simulated schedule."""

    workers: int
    t_seq: int
    makespan: int
    task_start: list[int] = field(default_factory=list)
    task_finish: list[int] = field(default_factory=list)
    #: Instructions the main thread spent blocked on joins.
    join_stall: int = 0

    @property
    def speedup(self) -> float:
        # makespan == 0 means the schedule ran nothing (no tasks, no
        # serial work). The honest answer is 0.0, not a fabricated
        # "x1.00" — estimate_speedup refuses such graphs up front.
        return self.t_seq / self.makespan if self.makespan else 0.0


class FutureSimulator:
    """List-scheduler over a :class:`TaskGraph`."""

    def __init__(self, workers: int = 4, privatize: bool = True,
                 spawn_overhead: int = 0):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        #: Model the paper's privatization transformations: WAR/WAW
        #: constraints disappear (each thread gets its own copy).
        self.privatize = privatize
        #: Fixed cost charged to the main thread per spawn (thread pool
        #: dispatch); 0 keeps the model purely algorithmic.
        self.spawn_overhead = spawn_overhead

    def schedule(self, graph: TaskGraph) -> ScheduleResult:
        tasks = graph.tasks
        count = len(tasks)
        deps = set(graph.task_deps)
        joins = {k: set(v) for k, v in graph.joins.items()}
        if not self.privatize:
            deps |= graph.anti_task_deps
            for segment, producers in graph.anti_joins.items():
                joins.setdefault(segment, set()).update(producers)

        producers_of: dict[int, list[int]] = {}
        for src, dst in deps:
            producers_of.setdefault(dst, []).append(src)

        finish = [0] * count
        start = [0] * count
        # Workers as a min-heap of free times.
        worker_free = [0] * self.workers
        heapq.heapify(worker_free)
        main_clock = 0
        join_stall = 0

        for k in range(count):
            # Serial segment k runs first; it may join on earlier tasks.
            ready = main_clock
            for producer in joins.get(k, ()):  # claim points
                if finish[producer] > ready:
                    ready = finish[producer]
            join_stall += ready - main_clock
            main_clock = ready + graph.serial[k]
            # Spawn task k.
            main_clock += self.spawn_overhead
            earliest = main_clock
            for producer in producers_of.get(k, ()):
                if finish[producer] > earliest:
                    earliest = finish[producer]
            free = heapq.heappop(worker_free)
            begin = max(earliest, free)
            end = begin + tasks[k].duration
            heapq.heappush(worker_free, end)
            start[k] = begin
            finish[k] = end

        # Epilogue: the final serial segment, joining as required.
        epilogue_index = count
        ready = main_clock
        for producer in joins.get(epilogue_index, ()):
            if finish[producer] > ready:
                ready = finish[producer]
        join_stall += ready - main_clock
        main_clock = ready + graph.serial[epilogue_index]
        # The program is done when the main thread and every future are.
        makespan = max([main_clock] + finish) if count else main_clock

        return ScheduleResult(
            workers=self.workers,
            t_seq=graph.total_time,
            makespan=makespan,
            task_start=start,
            task_finish=finish,
            join_stall=join_stall,
        )

    def sweep(self, graph: TaskGraph,
              worker_counts: list[int]) -> dict[int, ScheduleResult]:
        """Schedule the same graph for several worker counts."""
        results = {}
        for workers in worker_counts:
            sim = FutureSimulator(workers, self.privatize,
                                  self.spawn_overhead)
            results[workers] = sim.schedule(graph)
        return results
