"""High-level speedup estimation: pick a construct, simulate, report.

This is the programmatic face of the paper's §IV-B.2 "parallelization
experience": choose the construct the profile recommends, apply the
privatization transformations, and measure the speedup on K workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.constructs import ConstructKind, ConstructTable
from repro.ir.cfg import ProgramIR
from repro.ir.lowering import compile_source
from repro.parallel.simulator import FutureSimulator, ScheduleResult
from repro.parallel.taskgraph import TaskGraph, extract_task_graph


@dataclass
class SpeedupResult:
    """Everything Table V reports about one parallelization."""

    target_name: str
    target_pc: int
    workers: int
    graph: TaskGraph
    schedule: ScheduleResult

    @property
    def t_seq(self) -> int:
        return self.schedule.t_seq

    @property
    def t_par(self) -> int:
        return self.schedule.makespan

    @property
    def speedup(self) -> float:
        return self.schedule.speedup

    def describe(self) -> str:
        return (f"{self.target_name}: T_seq={self.t_seq} "
                f"T_par={self.t_par} x{self.speedup:.2f} "
                f"({len(self.graph.tasks)} tasks on "
                f"{self.workers} workers)")


def find_construct(program: ProgramIR, *, line: int | None = None,
                   fn_name: str | None = None,
                   pc: int | None = None) -> int:
    """Resolve a construct head pc from a source location.

    Loops are preferred over conditionals at the same line, mirroring how
    the paper names parallelized regions ("the loop on line 489").
    """
    table = ConstructTable(program)
    if pc is not None:
        if pc not in table.by_pc:
            raise KeyError(f"pc {pc} heads no construct")
        return pc
    if fn_name is not None and line is None:
        return table.procedures[fn_name].pc
    candidates = [c for c in table.by_pc.values()
                  if c.line == line
                  and (fn_name is None or c.fn_name == fn_name)]
    if not candidates:
        raise KeyError(f"no construct at line {line}")
    order = {ConstructKind.LOOP: 0, ConstructKind.PROCEDURE: 1,
             ConstructKind.COND: 2}
    candidates.sort(key=lambda c: order[c.kind])
    return candidates[0].pc


def estimate_speedup(source: str | None = None, *,
                     program: ProgramIR | None = None,
                     line: int | None = None,
                     fn_name: str | None = None,
                     pc: int | None = None,
                     workers: int = 4,
                     privatize: bool = True,
                     private_vars: tuple[str, ...] = (),
                     auto_induction: bool = True,
                     spawn_overhead: int = 0) -> SpeedupResult:
    """Simulate parallelizing the construct at ``line``/``fn_name``/``pc``.

    Returns the predicted speedup of running its instances as futures on
    ``workers`` workers. ``privatize`` drops WAR/WAW constraints (the
    paper's private copies); ``private_vars`` names globals whose RAW
    chains the transformation also breaks (per-thread copies that are
    recomputed or reduced, like AES-CTR's ``ivec``); ``auto_induction``
    exempts the loop's own control variables, which compiled code keeps
    in registers.
    """
    if program is None:
        if source is None:
            raise ValueError("need source or program")
        program = compile_source(source)
    target = find_construct(program, line=line, fn_name=fn_name, pc=pc)
    graph = extract_task_graph(program, target,
                               private_vars=private_vars,
                               auto_induction=auto_induction)
    sim = FutureSimulator(workers, privatize, spawn_overhead)
    schedule = sim.schedule(graph)
    table = ConstructTable(program)
    return SpeedupResult(
        target_name=table.by_pc[target].name,
        target_pc=target,
        workers=workers,
        graph=graph,
        schedule=schedule,
    )
