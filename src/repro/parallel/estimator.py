"""High-level speedup estimation: pick a construct, simulate, report.

This is the programmatic face of the paper's §IV-B.2 "parallelization
experience": choose the construct the profile recommends, apply the
privatization transformations, and measure the speedup on K workers.
The event stream can come from a live execution or a recorded trace
(:class:`~repro.parallel.taskgraph.TraceSource`) — the predicted
speedups are identical because extraction is a pure function of the
hook stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.constructs import ConstructKind, ConstructTable
from repro.ir.cfg import ProgramIR
from repro.ir.lowering import compile_source
from repro.parallel.simulator import FutureSimulator, ScheduleResult
from repro.parallel.taskgraph import (LiveSource, TaskGraph, TraceSource,
                                      extract_task_graphs)


class EstimatorError(ValueError):
    """A user-facing estimation failure: unknown construct/procedure,
    nothing to schedule. A ``ValueError`` subclass so pre-existing
    callers catching ``ValueError`` keep working."""


#: Tie-break when several constructs head the same line: loops first
#: (the paper names parallelized regions "the loop on line 489").
#: ``.get`` with the fallback keeps a future ConstructKind from
#: crashing the sort — unknown kinds rank last instead.
_KIND_ORDER = {ConstructKind.LOOP: 0, ConstructKind.PROCEDURE: 1,
               ConstructKind.COND: 2}
_KIND_ORDER_DEFAULT = len(_KIND_ORDER)


@dataclass
class SpeedupResult:
    """Everything Table V reports about one parallelization."""

    target_name: str
    target_pc: int
    workers: int
    graph: TaskGraph
    schedule: ScheduleResult

    @property
    def t_seq(self) -> int:
        return self.schedule.t_seq

    @property
    def t_par(self) -> int:
        return self.schedule.makespan

    @property
    def speedup(self) -> float:
        return self.schedule.speedup

    def describe(self) -> str:
        return (f"{self.target_name}: T_seq={self.t_seq} "
                f"T_par={self.t_par} x{self.speedup:.2f} "
                f"({len(self.graph.tasks)} tasks on "
                f"{self.workers} workers)")


def find_construct(program: ProgramIR, *, line: int | None = None,
                   fn_name: str | None = None,
                   pc: int | None = None) -> int:
    """Resolve a construct head pc from a source location.

    Loops are preferred over conditionals at the same line, mirroring how
    the paper names parallelized regions ("the loop on line 489").
    Raises :class:`EstimatorError` (never a bare ``KeyError``) with the
    valid alternatives listed when the location resolves to nothing.
    """
    table = ConstructTable(program)
    if pc is not None:
        if pc not in table.by_pc:
            heads = ", ".join(str(p) for p in sorted(table.by_pc)[:12])
            raise EstimatorError(
                f"pc {pc} heads no construct (construct heads: {heads}"
                f"{', ...' if len(table.by_pc) > 12 else ''})")
        return pc
    if fn_name is not None and line is None:
        try:
            return table.procedures[fn_name].pc
        except KeyError:
            known = ", ".join(sorted(table.procedures))
            raise EstimatorError(
                f"no procedure named {fn_name!r} (known procedures: "
                f"{known})") from None
    candidates = [c for c in table.by_pc.values()
                  if c.line == line
                  and (fn_name is None or c.fn_name == fn_name)]
    if not candidates:
        lines = sorted({c.line for c in table.by_pc.values()})
        shown = ", ".join(str(l) for l in lines[:16])
        raise EstimatorError(
            f"no construct at line {line} (lines heading constructs: "
            f"{shown}{', ...' if len(lines) > 16 else ''})")
    candidates.sort(key=lambda c: _KIND_ORDER.get(c.kind,
                                                  _KIND_ORDER_DEFAULT))
    return candidates[0].pc


def simulate_speedup(graph: TaskGraph, *, target_name: str,
                     workers: int = 4, privatize: bool = True,
                     spawn_overhead: int = 0) -> SpeedupResult:
    """Schedule an already-extracted task graph on ``workers`` workers.

    Raises :class:`EstimatorError` when the graph holds no task — a
    construct that executed no instances has nothing to schedule, and
    reporting "x1.00" for it would be a silent lie.
    """
    if not graph.tasks:
        raise EstimatorError(
            f"construct {target_name!r} executed no instances — "
            "nothing to schedule (pick a construct the profiled run "
            "actually entered)")
    sim = FutureSimulator(workers, privatize, spawn_overhead)
    return SpeedupResult(
        target_name=target_name,
        target_pc=graph.target_pc,
        workers=workers,
        graph=graph,
        schedule=sim.schedule(graph),
    )


def estimate_speedup(source: str | None = None, *,
                     program: ProgramIR | None = None,
                     trace: str | None = None,
                     line: int | None = None,
                     fn_name: str | None = None,
                     pc: int | None = None,
                     workers: int = 4,
                     privatize: bool = True,
                     private_vars: tuple[str, ...] = (),
                     auto_induction: bool = True,
                     spawn_overhead: int = 0) -> SpeedupResult:
    """Simulate parallelizing the construct at ``line``/``fn_name``/``pc``.

    Returns the predicted speedup of running its instances as futures on
    ``workers`` workers. The event stream comes from ``trace`` (a
    recorded trace file, replayed — no re-execution) when given,
    otherwise from one live run of ``program``/``source``. ``privatize``
    drops WAR/WAW constraints (the paper's private copies);
    ``private_vars`` names globals whose RAW chains the transformation
    also breaks (per-thread copies that are recomputed or reduced, like
    AES-CTR's ``ivec``); ``auto_induction`` exempts the loop's own
    control variables, which compiled code keeps in registers.
    """
    if trace is not None:
        event_source = TraceSource(trace, program)
        program = event_source.program
    else:
        if program is None:
            if source is None:
                raise EstimatorError("need source, program or trace")
            program = compile_source(source)
        event_source = LiveSource(program)
    target = find_construct(program, line=line, fn_name=fn_name, pc=pc)
    graphs = extract_task_graphs(
        event_source, {target: tuple(private_vars)},
        auto_induction=auto_induction)
    table = ConstructTable(program)
    return simulate_speedup(graphs[target],
                            target_name=table.by_pc[target].name,
                            workers=workers, privatize=privatize,
                            spawn_overhead=spawn_overhead)
