"""Tracer interface: the instrumentation surface of the interpreter.

The interpreter calls these hooks as it executes; the Alchemist profiler
(:mod:`repro.core.tracer`) implements them. Timestamps are the number of
IR instructions executed so far — the reproduction's stand-in for the
paper's dynamic instruction counts.

Hook order guarantees relied on by the profiler:

* ``on_enter_function`` fires before any instruction of the callee runs;
* ``on_block_enter`` fires before the first instruction of a block when
  control arrives via a branch or jump (not at function entry);
* ``on_branch`` fires after the branch's condition has been read, with
  the chosen target;
* ``on_write`` for a return value fires before ``on_exit_function``;
  the matching ``on_read`` (attributed to the call site) fires after it;
* ``on_frame_free`` fires when a frame's addresses become dead; the
  profiler must forget shadow state for that range.
"""

from __future__ import annotations

from repro.ir.cfg import ProgramIR
from repro.runtime.memory import Memory


class Tracer:
    """No-op base tracer; subclasses override what they need."""

    def on_start(self, program: ProgramIR, memory: Memory) -> None:
        """Execution is about to begin (globals already initialized)."""

    def on_enter_function(self, fn_name: str, entry_pc: int,
                          timestamp: int) -> None:
        """A call pushed a new activation."""

    def on_exit_function(self, fn_name: str, timestamp: int) -> None:
        """The current activation is returning."""

    def on_block_enter(self, block_id: int, timestamp: int) -> None:
        """Control transferred to the start of a block."""

    def on_branch(self, pc: int, target_block: int, timestamp: int) -> None:
        """A Branch at ``pc`` chose ``target_block``."""

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        """A traced memory read."""

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        """A traced memory write."""

    def on_heap_alloc(self, base: int, size: int, timestamp: int) -> None:
        """``malloc`` returned the block ``[base, base + size)``.

        The dependence profiler does not need this hook (a fresh block
        has no history), but trace recording does: replaying the
        allocation stream lets a consumer reconstruct the heap layout —
        and therefore symbolic names — without re-running the program.
        """

    def on_frame_free(self, lo: int, hi: int) -> None:
        """Addresses ``[lo, hi)`` were deallocated."""

    def on_finish(self, timestamp: int) -> None:
        """Execution completed normally."""


class NullTracer(Tracer):
    """The baseline: no instrumentation (the paper's 'Orig.' runs)."""


#: Every event hook, derived from Tracer so a hook added there is
#: automatically fanned out by TeeTracer (on_start is dispatch setup,
#: not an event). The replay engine's per-event dispatch necessarily
#: stays hand-written (it decodes trace records), but it reads this
#: tuple's source of truth via tests.
TRACER_HOOKS = tuple(name for name in vars(Tracer)
                     if name.startswith("on_") and name != "on_start")

#: The memory-access hooks — the only events a sampling policy may
#: drop. Everything else (enter/exit, block, branch, alloc, free,
#: finish) is structural: replay needs the complete stream to
#: reconstruct frames and the heap, so gates must pass it through.
MEMORY_HOOKS = ("on_read", "on_write")


def overridden_hooks(tracers: list, hook_name: str) -> list:
    """Bound ``hook_name`` methods that actually override the base
    no-op. Shared by every event dispatcher (the replay engine, the
    live tee) so a tracer only pays for the events it handles."""
    base = getattr(Tracer, hook_name)
    hooks = []
    for tracer in tracers:
        hook = getattr(tracer, hook_name)
        if getattr(hook, "__func__", None) is not base:
            hooks.append(hook)
    return hooks


class TeeTracer(Tracer):
    """Fans one interpreter run out to any number of child tracers.

    This is the live twin of the replay engine's dispatch: one
    execution feeds N analyses. ``on_start`` forwards to every child
    first (children may rebind their own hooks there), then rebinds
    this tracer's hooks to per-event dispatchers that skip children
    inheriting the base no-op — a child that never overrides
    ``on_block_enter`` costs nothing on block events, and a single
    interested child is called directly with no fan-out loop at all.
    """

    def __init__(self, children: list[Tracer]):
        self.children = list(children)

    def on_start(self, program: ProgramIR, memory: Memory) -> None:
        for child in self.children:
            child.on_start(program, memory)
        for name in TRACER_HOOKS:
            hooks = overridden_hooks(self.children, name)
            if not hooks:
                continue
            if len(hooks) == 1:
                setattr(self, name, hooks[0])
            else:
                setattr(self, name, self._fan(hooks))

    @staticmethod
    def _fan(hooks: list):
        def dispatch(*args):
            for hook in hooks:
                hook(*args)
        return dispatch


class CountingTracer(Tracer):
    """Cheap event statistics; used by tests and the bench harness."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.calls = 0
        self.branches = 0
        self.blocks = 0

    def on_enter_function(self, fn_name: str, entry_pc: int,
                          timestamp: int) -> None:
        self.calls += 1

    def on_block_enter(self, block_id: int, timestamp: int) -> None:
        self.blocks += 1

    def on_branch(self, pc: int, target_block: int, timestamp: int) -> None:
        self.branches += 1

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        self.reads += 1

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        self.writes += 1
