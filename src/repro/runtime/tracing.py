"""Tracer interface: the instrumentation surface of the interpreter.

The interpreter calls these hooks as it executes; the Alchemist profiler
(:mod:`repro.core.tracer`) implements them. Timestamps are the number of
IR instructions executed so far — the reproduction's stand-in for the
paper's dynamic instruction counts.

Hook order guarantees relied on by the profiler:

* ``on_enter_function`` fires before any instruction of the callee runs;
* ``on_block_enter`` fires before the first instruction of a block when
  control arrives via a branch or jump (not at function entry);
* ``on_branch`` fires after the branch's condition has been read, with
  the chosen target;
* ``on_write`` for a return value fires before ``on_exit_function``;
  the matching ``on_read`` (attributed to the call site) fires after it;
* ``on_frame_free`` fires when a frame's addresses become dead; the
  profiler must forget shadow state for that range.
"""

from __future__ import annotations

from repro.ir.cfg import ProgramIR
from repro.runtime.memory import Memory


class Tracer:
    """No-op base tracer; subclasses override what they need."""

    def on_start(self, program: ProgramIR, memory: Memory) -> None:
        """Execution is about to begin (globals already initialized)."""

    def on_enter_function(self, fn_name: str, entry_pc: int,
                          timestamp: int) -> None:
        """A call pushed a new activation."""

    def on_exit_function(self, fn_name: str, timestamp: int) -> None:
        """The current activation is returning."""

    def on_block_enter(self, block_id: int, timestamp: int) -> None:
        """Control transferred to the start of a block."""

    def on_branch(self, pc: int, target_block: int, timestamp: int) -> None:
        """A Branch at ``pc`` chose ``target_block``."""

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        """A traced memory read."""

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        """A traced memory write."""

    def on_heap_alloc(self, base: int, size: int, timestamp: int) -> None:
        """``malloc`` returned the block ``[base, base + size)``.

        The dependence profiler does not need this hook (a fresh block
        has no history), but trace recording does: replaying the
        allocation stream lets a consumer reconstruct the heap layout —
        and therefore symbolic names — without re-running the program.
        """

    def on_frame_free(self, lo: int, hi: int) -> None:
        """Addresses ``[lo, hi)`` were deallocated."""

    def on_finish(self, timestamp: int) -> None:
        """Execution completed normally."""


class NullTracer(Tracer):
    """The baseline: no instrumentation (the paper's 'Orig.' runs)."""


class CountingTracer(Tracer):
    """Cheap event statistics; used by tests and the bench harness."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.calls = 0
        self.branches = 0
        self.blocks = 0

    def on_enter_function(self, fn_name: str, entry_pc: int,
                          timestamp: int) -> None:
        self.calls += 1

    def on_block_enter(self, block_id: int, timestamp: int) -> None:
        self.blocks += 1

    def on_branch(self, pc: int, target_block: int, timestamp: int) -> None:
        self.branches += 1

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        self.reads += 1

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        self.writes += 1
