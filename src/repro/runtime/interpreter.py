"""Instruction-level MiniC interpreter with instrumentation hooks.

The interpreter executes the IR with an explicit activation stack (so
deep MiniC recursion cannot overflow the Python stack), advances a
timestamp per executed instruction, and reports events to a
:class:`repro.runtime.tracing.Tracer`.

Semantics notes:

* integers are 64-bit signed with wraparound; division and remainder
  truncate toward zero (C99); shift counts are masked to 0..63;
* array accesses are bounds-checked (also through array references,
  using the allocation registry);
* return values travel through a traced memory cell at frame offset 0,
  written at the ``return`` and read at the call site one tick after the
  callee exits — which reproduces the paper's return-value dependences
  (gzip's ``line 29 -> line 9, Tdep = 1``).
"""

from __future__ import annotations

import sys
from typing import Sequence

from repro.ir import instructions as ins
from repro.ir.cfg import ProgramIR
from repro.ir.lowering import compile_source
from repro.runtime.errors import MiniCRuntimeError, StepLimitExceeded
from repro.runtime.memory import Memory
from repro.runtime.tracing import NullTracer, Tracer

_MASK = (1 << 64) - 1
_SIGN = 1 << 63

#: Default instruction budget; ample for every bundled workload.
DEFAULT_MAX_STEPS = 500_000_000


def _wrap(value: int) -> int:
    """Reduce to 64-bit two's-complement signed."""
    value &= _MASK
    return value - (1 << 64) if value & _SIGN else value


def c_div(a: int, b: int) -> int:
    """C99 division (truncate toward zero)."""
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


class Activation:
    """One frame on the explicit call stack."""

    __slots__ = ("fn", "regs", "base", "refs", "block", "idx",
                 "ret_dst", "call_pc")

    def __init__(self, fn, base: int, ret_dst: int | None, call_pc: int):
        self.fn = fn
        self.regs = [0] * fn.num_regs
        self.base = base
        self.refs: list[int] = []
        self.block = fn.entry_block
        self.idx = 0
        self.ret_dst = ret_dst
        self.call_pc = call_pc


class Interpreter:
    """Executes a finalized :class:`ProgramIR`."""

    def __init__(self, program: ProgramIR, tracer: Tracer | None = None,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 stdout=None):
        self.program = program
        self.tracer = tracer if tracer is not None else NullTracer()
        self.max_steps = max_steps
        self.memory = Memory(program)
        self.time = 0
        self.output: list[tuple[int, ...]] = []
        self.stdout = stdout
        self.exit_value: int | None = None
        self.dynamic_calls = 0

    # -- public API -----------------------------------------------------

    def run(self) -> int:
        """Run ``main()`` to completion; returns its exit value."""
        tracer = self.tracer
        memory = self.memory
        program = self.program
        main = program.main
        tracer.on_start(program, memory)
        base = memory.push_frame(main)
        frames = [Activation(main, base, None, -1)]
        self.dynamic_calls = 1
        tracer.on_enter_function(main.name, main.entry_pc, self.time)

        cells = memory.cells
        blocks_by_id = program.blocks_by_id
        max_steps = self.max_steps
        time = self.time

        while frames:
            act = frames[-1]
            instr = act.block.instrs[act.idx]
            act.idx += 1
            time += 1
            if time > max_steps:
                self.time = time
                raise StepLimitExceeded(
                    f"instruction budget of {max_steps} exhausted",
                    instr.pc, instr.line, instr.col, instr.fn_name)
            op = instr.opcode
            regs = act.regs

            if op == "load":
                addr = self._resolve(act, instr, instr.index)
                tracer.on_read(addr, instr.pc, time)
                regs[instr.dst] = cells[addr]
            elif op == "store":
                addr = self._resolve(act, instr, instr.index)
                cells[addr] = regs[instr.src]
                tracer.on_write(addr, instr.pc, time)
            elif op == "binop":
                regs[instr.dst] = self._binop(instr, regs[instr.lhs],
                                              regs[instr.rhs])
            elif op == "const":
                regs[instr.dst] = instr.value
            elif op == "branch":
                target = (instr.then_block if regs[instr.cond] != 0
                          else instr.else_block)
                tracer.on_branch(instr.pc, target, time)
                act.block = blocks_by_id[target]
                act.idx = 0
                tracer.on_block_enter(target, time)
            elif op == "jump":
                act.block = blocks_by_id[instr.target]
                act.idx = 0
                tracer.on_block_enter(instr.target, time)
            elif op == "move":
                regs[instr.dst] = regs[instr.src]
            elif op == "unop":
                regs[instr.dst] = self._unop(instr, regs[instr.src])
            elif op == "loadind":
                addr = regs[instr.addr]
                if not memory.check_addr(addr):
                    self.time = time
                    raise MiniCRuntimeError(
                        f"invalid pointer read at address {addr}",
                        instr.pc, instr.line, instr.col, instr.fn_name)
                tracer.on_read(addr, instr.pc, time)
                regs[instr.dst] = cells[addr]
            elif op == "storeind":
                addr = regs[instr.addr]
                if not memory.check_addr(addr):
                    self.time = time
                    raise MiniCRuntimeError(
                        f"invalid pointer write at address {addr}",
                        instr.pc, instr.line, instr.col, instr.fn_name)
                cells[addr] = regs[instr.src]
                tracer.on_write(addr, instr.pc, time)
            elif op == "alloc":
                size = regs[instr.size]
                try:
                    base = memory.heap_alloc(size)
                except ValueError as exc:
                    self.time = time
                    raise MiniCRuntimeError(str(exc), instr.pc, instr.line,
                                            instr.col, instr.fn_name)
                regs[instr.dst] = base
                tracer.on_heap_alloc(base, size, time)
            elif op == "free":
                try:
                    lo, hi = memory.heap_free(regs[instr.src])
                except ValueError as exc:
                    self.time = time
                    raise MiniCRuntimeError(str(exc), instr.pc, instr.line,
                                            instr.col, instr.fn_name)
                tracer.on_frame_free(lo, hi)
            elif op == "call":
                callee = self.program.functions[instr.name]
                try:
                    cbase = memory.push_frame(callee)
                except OverflowError as exc:
                    self.time = time
                    raise MiniCRuntimeError(str(exc), instr.pc, instr.line,
                                            instr.col, instr.fn_name)
                cells = memory.cells  # push_frame may reallocate
                child = Activation(callee, cbase, instr.dst, instr.pc)
                for info, arg in zip(callee.params, instr.args):
                    if info.is_array:
                        child.refs.append(regs[arg])
                    else:
                        cells[cbase + info.slot.offset] = regs[arg]
                frames.append(child)
                self.dynamic_calls += 1
                tracer.on_enter_function(callee.name, callee.entry_pc, time)
            elif op == "ret":
                value = 0
                if instr.src is not None:
                    value = regs[instr.src]
                    cells[act.base] = value
                    tracer.on_write(act.base, instr.pc, time)
                tracer.on_exit_function(act.fn.name, time)
                region = memory.pop_frame()
                tracer.on_frame_free(region.base + 1,
                                     region.base + region.size)
                frames.pop()
                if frames:
                    caller = frames[-1]
                    if act.ret_dst is not None:
                        time += 1
                        tracer.on_read(act.base, act.call_pc, time)
                        caller.regs[act.ret_dst] = value
                        tracer.on_frame_free(act.base, act.base + 1)
                else:
                    if instr.src is not None:
                        tracer.on_frame_free(act.base, act.base + 1)
                    self.exit_value = value
            elif op == "addrof":
                regs[instr.dst] = self._base_of(act, instr.slot, instr)
            elif op == "print":
                values = tuple(regs[a] for a in instr.args)
                self.output.append(values)
                if self.stdout is not None:
                    print(" ".join(str(v) for v in values),
                          file=self.stdout)
            elif op == "assert":
                if regs[instr.cond] == 0:
                    self.time = time
                    raise MiniCRuntimeError("assertion failed", instr.pc,
                                            instr.line, instr.col,
                                            instr.fn_name)
            else:  # pragma: no cover - exhaustive opcode list
                raise MiniCRuntimeError(f"unknown opcode {op}", instr.pc,
                                        instr.line, instr.col, instr.fn_name)

        self.time = time
        tracer.on_finish(time)
        return self.exit_value if self.exit_value is not None else 0

    # -- helpers ------------------------------------------------------------

    def _base_of(self, act: Activation, slot: ins.Slot,
                 instr: ins.Instr) -> int:
        if type(slot) is ins.GlobalSlot:
            return slot.offset
        if type(slot) is ins.LocalSlot:
            return act.base + slot.offset
        return act.refs[slot.ref_index]

    def _resolve(self, act: Activation, instr: ins.Instr,
                 index: int | None) -> int:
        """Compute the effective address of a Load/Store, bounds-checked."""
        slot = instr.slot
        slot_type = type(slot)
        if slot_type is ins.GlobalSlot:
            base, size = slot.offset, slot.size
        elif slot_type is ins.LocalSlot:
            base, size = act.base + slot.offset, slot.size
        else:
            base = act.refs[slot.ref_index]
            extent = self.memory.array_extent(base)
            if extent is None:
                # An interior pointer (`f(&buf[k])`) or other computed
                # address: no static extent, so fall back to a liveness
                # check on the effective address.
                addr = base if index is None else base + act.regs[index]
                if not self.memory.check_addr(addr):
                    raise MiniCRuntimeError(
                        f"array reference {slot.name!r} points outside "
                        f"live memory (address {addr})", instr.pc,
                        instr.line, instr.col, instr.fn_name)
                return addr
            size = extent[0]
        if index is None:
            return base
        idx = act.regs[index]
        if idx < 0 or idx >= size:
            raise MiniCRuntimeError(
                f"index {idx} out of bounds for {slot.name!r}[{size}]",
                instr.pc, instr.line, instr.col, instr.fn_name)
        return base + idx

    def _binop(self, instr: ins.BinOp, a: int, b: int) -> int:
        op = instr.op
        if op == "+":
            return _wrap(a + b)
        if op == "-":
            return _wrap(a - b)
        if op == "*":
            return _wrap(a * b)
        if op == "<":
            return 1 if a < b else 0
        if op == ">":
            return 1 if a > b else 0
        if op == "<=":
            return 1 if a <= b else 0
        if op == ">=":
            return 1 if a >= b else 0
        if op == "==":
            return 1 if a == b else 0
        if op == "!=":
            return 1 if a != b else 0
        if op == "&":
            return _wrap(a & b)
        if op == "|":
            return _wrap(a | b)
        if op == "^":
            return _wrap(a ^ b)
        if op == "<<":
            return _wrap(a << (b & 63))
        if op == ">>":
            return _wrap(a >> (b & 63))
        if op == "/":
            if b == 0:
                raise MiniCRuntimeError("division by zero", instr.pc,
                                        instr.line, instr.col, instr.fn_name)
            return _wrap(c_div(a, b))
        if op == "%":
            if b == 0:
                raise MiniCRuntimeError("remainder by zero", instr.pc,
                                        instr.line, instr.col, instr.fn_name)
            return _wrap(a - c_div(a, b) * b)
        raise MiniCRuntimeError(f"unknown operator {op!r}", instr.pc,
                                instr.line, instr.col, instr.fn_name)

    def _unop(self, instr: ins.UnOp, a: int) -> int:
        op = instr.op
        if op == "-":
            return _wrap(-a)
        if op == "~":
            return _wrap(~a)
        if op == "!":
            return 1 if a == 0 else 0
        if op == "tobool":
            return 1 if a != 0 else 0
        raise MiniCRuntimeError(f"unknown operator {op!r}", instr.pc,
                                instr.line, instr.col, instr.fn_name)


def run_source(source: str, tracer: Tracer | None = None,
               max_steps: int = DEFAULT_MAX_STEPS,
               stdout=None,
               program: ProgramIR | None = None
               ) -> tuple[int, Interpreter]:
    """Compile and run MiniC ``source``; returns (exit value, interpreter).

    Pass ``program`` to reuse an already-compiled :class:`ProgramIR`
    (``source`` is then ignored).
    """
    if program is None:
        program = compile_source(source)
    interp = Interpreter(program, tracer, max_steps, stdout)
    value = interp.run()
    return value, interp


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """Tiny direct runner: ``python -m repro.runtime.interpreter file.mc``."""
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: interpreter.py <file.mc>", file=sys.stderr)
        return 2
    with open(args[0]) as handle:
        source = handle.read()
    value, _ = run_source(source, stdout=sys.stdout)
    return value


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
