"""Flat addressable memory for MiniC.

Layout: the global segment occupies addresses ``[0, globals_size)``;
stack frames grow upward from there, bounded by ``stack_limit`` words;
the heap begins at ``globals_size + stack_limit`` and grows upward.
Each frame is ``[return-value cell][scalars and arrays...]``; the cell
at offset 0 carries return values through traced memory (reproducing
the paper's return-value dependences). Frames are deallocated on return
with strict stack discipline, and the profiler is told to forget the
freed range so address reuse across calls cannot fabricate dependences.
Heap blocks come from ``malloc``/``free``; freed blocks are recycled
(same-size first), and the profiler likewise forgets freed ranges.

An allocation registry maps array and heap-block base addresses to
extents so indexed accesses through by-reference array parameters are
bounds-checked even though their size is unknown statically.
"""

from __future__ import annotations

from bisect import bisect_right, insort

from repro.ir.cfg import FunctionIR, ProgramIR

#: Words reserved for the stack between the globals and the heap.
DEFAULT_STACK_LIMIT = 1 << 16


class FrameRegion:
    """Bookkeeping for one live frame (addresses and name lookup)."""

    __slots__ = ("base", "size", "fn")

    def __init__(self, base: int, size: int, fn: FunctionIR):
        self.base = base
        self.size = size
        self.fn = fn


class Memory:
    """Word-addressed memory: every cell holds a 64-bit signed integer.

    Uninitialized cells read as 0 (MiniC defines what C leaves undefined,
    so profiled runs are deterministic).
    """

    def __init__(self, program: ProgramIR,
                 stack_limit: int = DEFAULT_STACK_LIMIT):
        self.program = program
        self.cells: list[int] = [0] * max(program.globals_size, 1)
        self.stack_top = program.globals_size
        self.stack_limit = stack_limit
        #: Array base address -> (size, name); for bounds checks through
        #: array references and for address -> name reporting.
        self.allocations: dict[int, tuple[int, str]] = {}
        self.frames: list[FrameRegion] = []
        #: Most recently popped frame; return-value reads happen right
        #: after the pop and still want a symbolic name.
        self.last_popped: FrameRegion | None = None
        #: Heap bookkeeping: live block base -> size, sorted live bases
        #: (for containment queries), and freed blocks bucketed by size
        #: for same-size recycling.
        self.heap_base = program.globals_size + stack_limit
        self.heap_top = self.heap_base
        self._heap_blocks: dict[int, int] = {}
        self._heap_bases: list[int] = []
        self._free_by_size: dict[int, list[int]] = {}
        self._next_heap_id = 1
        self.heap_allocs = 0
        self.heap_frees = 0
        for info in program.globals_layout:
            if info.is_array:
                self.allocations[info.offset] = (info.size, info.name)
            elif info.init is not None:
                self.cells[info.offset] = info.init
        self.high_water = self.stack_top

    # -- frames -----------------------------------------------------------

    def push_frame(self, fn: FunctionIR) -> int:
        """Allocate a frame for ``fn``; returns the base address.

        Raises :class:`OverflowError` when the frame would run into the
        heap region (deep recursion); the interpreter converts this into
        a sourced runtime error.
        """
        base = self.stack_top
        self.stack_top += fn.frame_size
        if self.stack_top > self.heap_base:
            self.stack_top = base
            raise OverflowError(
                f"stack overflow: frame for {fn.name}() exceeds the "
                f"{self.stack_limit}-word stack region")
        if self.stack_top > len(self.cells):
            self.cells.extend([0] * (self.stack_top - len(self.cells)))
        else:
            # Reused stack memory must read as freshly zeroed; one
            # slice assignment, not a per-word loop — frame pushes are
            # on the replay engine's structural hot path.
            self.cells[base:self.stack_top] = \
                [0] * (self.stack_top - base)
        self.high_water = max(self.high_water, self.stack_top)
        for info in fn.locals_layout:
            if info.is_array:
                self.allocations[base + info.offset] = (info.size, info.name)
        self.frames.append(FrameRegion(base, fn.frame_size, fn))
        return base

    def pop_frame(self) -> FrameRegion:
        """Deallocate the top frame (strict stack discipline)."""
        region = self.frames.pop()
        for info in region.fn.locals_layout:
            if info.is_array:
                self.allocations.pop(region.base + info.offset, None)
        self.stack_top = region.base
        self.last_popped = region
        return region

    # -- heap -----------------------------------------------------------

    def heap_alloc(self, size: int) -> int:
        """Allocate ``size`` zeroed words; returns the base address.

        Freed blocks of exactly the same size are recycled first (so
        address reuse — the hazard the shadow-memory clearing guards
        against — actually happens in heap-heavy workloads).
        """
        if size <= 0:
            raise ValueError("malloc size must be positive")
        bucket = self._free_by_size.get(size)
        if bucket:
            base = bucket.pop()
            # Recycled blocks read as freshly zeroed (slice form, same
            # reasoning as the frame-reuse zeroing in push_frame).
            self.cells[base:base + size] = [0] * size
        else:
            base = self.heap_top
            self.heap_top += size
            if self.heap_top > len(self.cells):
                self.cells.extend([0] * (self.heap_top - len(self.cells)))
        self._heap_blocks[base] = size
        insort(self._heap_bases, base)
        name = f"heap#{self._next_heap_id}"
        self._next_heap_id += 1
        self.allocations[base] = (size, name)
        self.heap_allocs += 1
        return base

    def heap_free(self, base: int) -> tuple[int, int]:
        """Release the block at ``base``; returns its ``[lo, hi)`` range.

        Raises :class:`ValueError` for double frees, frees of interior
        pointers, and frees of non-heap addresses.
        """
        size = self._heap_blocks.pop(base, None)
        if size is None:
            raise ValueError(
                f"free of address {base}, which is not a live heap block")
        index = bisect_right(self._heap_bases, base) - 1
        del self._heap_bases[index]
        del self.allocations[base]
        self._free_by_size.setdefault(size, []).append(base)
        self.heap_frees += 1
        return base, base + size

    def restore_heap(self, top: int, next_id: int,
                     blocks: list, free_by_size: dict,
                     allocs: int = 0, frees: int = 0) -> None:
        """Adopt a checkpointed heap layout (parallel segment replay).

        ``blocks`` is ``[(base, size, id), ...]`` for the live blocks
        (``id`` numbers the ``heap#N`` name); ``free_by_size`` maps
        size -> list of freed bases *in original free order* — the
        recycler pops from the tail, so order is allocation-visible.
        After this, ``heap_alloc``/``heap_free`` behave exactly as they
        would had the original allocation history run in-process.
        """
        self.heap_top = top
        self._next_heap_id = next_id
        self._heap_blocks = {}
        self._heap_bases = []
        for base, size, block_id in blocks:
            self._heap_blocks[base] = size
            self._heap_bases.append(base)
            self.allocations[base] = (size, f"heap#{block_id}")
        self._heap_bases.sort()
        self._free_by_size = {int(size): list(bases)
                              for size, bases in free_by_size.items()
                              if bases}
        self.heap_allocs = allocs
        self.heap_frees = frees
        if top > len(self.cells):
            # Recycled allocations zero their cells in place; the
            # restored address space must reach the checkpointed top.
            self.cells.extend([0] * (top - len(self.cells)))

    def set_last_popped(self, fn: FunctionIR, base: int) -> None:
        """Restore the popped-frame marker (a checkpoint can land
        between a frame pop and the caller's return-value read, and
        ``addr_to_name`` must still say ``retval(callee)`` there)."""
        self.last_popped = FrameRegion(base, fn.frame_size, fn)

    def heap_block_containing(self, addr: int) -> tuple[int, int] | None:
        """The live heap block ``(base, size)`` containing ``addr``."""
        index = bisect_right(self._heap_bases, addr) - 1
        if index < 0:
            return None
        base = self._heap_bases[index]
        size = self._heap_blocks[base]
        if addr < base + size:
            return base, size
        return None

    def live_heap_words(self) -> int:
        return sum(self._heap_blocks.values())

    # -- accesses -----------------------------------------------------------

    def read(self, addr: int) -> int:
        return self.cells[addr]

    def write(self, addr: int, value: int) -> None:
        self.cells[addr] = value

    def check_addr(self, addr: int) -> bool:
        """True when ``addr`` is a live word: a global, in a live stack
        frame, or inside a live heap block. Dereferencing anything else
        (NULL, dead stack, freed or never-allocated heap) is a runtime
        error. Address 0 is reserved as NULL by the global layout."""
        if 0 < addr < self.stack_top:
            return True
        if addr >= self.heap_base:
            return self.heap_block_containing(addr) is not None
        return False

    def array_extent(self, base: int) -> tuple[int, str] | None:
        """Size and name of the array allocated at ``base`` (or None)."""
        return self.allocations.get(base)

    # -- reporting ------------------------------------------------------------

    def addr_to_name(self, addr: int) -> str:
        """Best-effort symbolic name for an address (for reports)."""
        if addr < self.program.globals_size:
            name = self.program.global_addr_to_name(addr)
            return name if name is not None else f"global+{addr}"
        if addr >= self.heap_base:
            block = self.heap_block_containing(addr)
            if block is None:
                return f"heap+{addr - self.heap_base}"
            base, size = block
            name = self.allocations[base][1]
            if size == 1:
                return name
            return f"{name}[{addr - base}]"
        # Live frames take priority; the stale last-popped frame (kept so
        # the caller's return-value read right after a pop still names
        # `retval(callee)`) may share its base with a newer live frame.
        candidates = [self.last_popped] if self.last_popped is not None else []
        candidates.extend(self.frames)
        for region in reversed(candidates):
            if region.base <= addr < region.base + region.size:
                offset = addr - region.base
                if offset == 0:
                    return f"retval({region.fn.name})"
                for info in region.fn.locals_layout:
                    if info.offset <= offset < info.offset + info.size:
                        if info.is_array:
                            element = offset - info.offset
                            return f"{region.fn.name}.{info.name}[{element}]"
                        return f"{region.fn.name}.{info.name}"
                return f"{region.fn.name}+{offset}"
        return f"stack+{addr}"
