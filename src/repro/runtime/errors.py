"""Runtime errors raised by the MiniC interpreter."""

from __future__ import annotations


class MiniCRuntimeError(Exception):
    """A trap during MiniC execution (bounds, division by zero, assert)."""

    def __init__(self, message: str, pc: int = -1, line: int = 0,
                 col: int = 0, fn_name: str = ""):
        self.message = message
        self.pc = pc
        self.line = line
        self.col = col
        self.fn_name = fn_name
        where = f" in {fn_name} at line {line}" if fn_name else ""
        super().__init__(f"{message}{where}")


class StepLimitExceeded(MiniCRuntimeError):
    """The configured instruction budget ran out (runaway program)."""
