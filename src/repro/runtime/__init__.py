"""MiniC runtime: addressable memory and the tracing interpreter.

The interpreter executes :class:`repro.ir.cfg.ProgramIR` one instruction
at a time, advancing a timestamp per instruction and reporting events
(memory reads/writes, procedure entries/exits, branch outcomes, block
entries) to a :class:`repro.runtime.tracing.Tracer`. The Alchemist
profiler is one such tracer; a null tracer gives the baseline run the
paper calls "Orig.".
"""

from repro.runtime.errors import MiniCRuntimeError, StepLimitExceeded
from repro.runtime.interpreter import Interpreter, run_source
from repro.runtime.memory import Memory
from repro.runtime.tracing import NullTracer, Tracer

__all__ = [
    "Interpreter",
    "run_source",
    "Memory",
    "Tracer",
    "NullTracer",
    "MiniCRuntimeError",
    "StepLimitExceeded",
]
