"""Static call graph over the IR (used by reports and the advisor)."""

from __future__ import annotations

from collections import defaultdict

from repro.ir import instructions as ins
from repro.ir.cfg import ProgramIR


def call_sites(program: ProgramIR) -> dict[str, list[int]]:
    """Map callee name -> pcs of its call sites."""
    sites: dict[str, list[int]] = defaultdict(list)
    for instr in program.instrs:
        if isinstance(instr, ins.Call):
            sites[instr.name].append(instr.pc)
    return dict(sites)


def call_edges(program: ProgramIR) -> set[tuple[str, str]]:
    """Set of (caller, callee) edges."""
    edges: set[tuple[str, str]] = set()
    for instr in program.instrs:
        if isinstance(instr, ins.Call):
            edges.add((instr.fn_name, instr.name))
    return edges


def recursive_functions(program: ProgramIR) -> set[str]:
    """Functions on a call-graph cycle (need the paper's recursion-safe
    nesting counters — §III-B 'Recursion')."""
    edges = call_edges(program)
    adjacency: dict[str, set[str]] = defaultdict(set)
    for caller, callee in edges:
        adjacency[caller].add(callee)

    recursive: set[str] = set()
    for start in program.functions:
        stack = [start]
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            for succ in adjacency.get(node, ()):
                if succ == start:
                    recursive.add(start)
                    stack = []
                    break
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
    return recursive
