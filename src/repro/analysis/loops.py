"""Natural loop detection.

A back edge is an edge ``u -> h`` whose target dominates its source. The
natural loop of a header ``h`` is ``{h}`` plus every block that can reach
one of its back-edge sources without passing through ``h``. Loop bodies
drive rule (4) of the paper's instrumentation (loop-iteration siblings)
and loop-predicate classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dominance import dominates, dominators_of
from repro.ir import instructions as ins
from repro.ir.cfg import VIRTUAL_EXIT, FunctionIR


@dataclass
class LoopInfo:
    """One natural loop (back edges with the same header are merged)."""

    header: int
    body: frozenset[int] = field(default_factory=frozenset)
    back_edges: list[tuple[int, int]] = field(default_factory=list)
    #: pc of the branch that drives the iteration (the paper's "loop
    #: predicate"): the header's branch for while/for loops, the back-edge
    #: source's branch for do-while loops. ``None`` if neither exists.
    canonical_branch_pc: int | None = None


def find_loops(fn: FunctionIR) -> list[LoopInfo]:
    """All natural loops of ``fn``, innermost and outermost alike."""
    blocks = fn.block_map()
    idom = dominators_of(fn)
    entry = fn.entry_block.id

    back_edges: list[tuple[int, int]] = []
    for block in fn.blocks:
        if block.id not in idom:
            continue  # unreachable
        for succ in block.successors():
            if succ == VIRTUAL_EXIT or succ not in idom:
                continue
            if dominates(idom, entry, succ, block.id):
                back_edges.append((block.id, succ))

    loops: dict[int, LoopInfo] = {}
    preds = fn.predecessors()
    for source, header in back_edges:
        loop = loops.setdefault(header, LoopInfo(header))
        loop.back_edges.append((source, header))
        body = set(loop.body) | {header}
        stack = [source]
        while stack:
            node = stack.pop()
            if node in body or node == VIRTUAL_EXIT:
                continue
            body.add(node)
            stack.extend(preds.get(node, []))
        loop.body = frozenset(body)

    for loop in loops.values():
        loop.canonical_branch_pc = _canonical_branch(blocks, loop)
    return sorted(loops.values(), key=lambda l: l.header)


def _canonical_branch(blocks, loop: LoopInfo) -> int | None:
    header_term = blocks[loop.header].terminator
    if isinstance(header_term, ins.Branch):
        return header_term.pc
    # A shared-header loop (merged back edges) can have several
    # branch-terminated back-edge sources; pick the smallest pc so the
    # choice is a property of the loop, not of the order the back edges
    # happened to be discovered in.
    candidates = [blocks[source].terminator.pc
                  for source, _ in loop.back_edges
                  if isinstance(blocks[source].terminator, ins.Branch)]
    return min(candidates) if candidates else None
