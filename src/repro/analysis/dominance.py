"""Dominator and post-dominator computation.

Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple,
Fast Dominance Algorithm") over an arbitrary successor function, so the
same code computes dominators (forward CFG) and post-dominators (reverse
CFG rooted at the virtual exit). The property tests cross-check the
result against ``networkx.immediate_dominators``.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.ir.cfg import VIRTUAL_EXIT, FunctionIR

Node = Hashable


def immediate_dominators(
        entry: Node,
        successors: Callable[[Node], Iterable[Node]]) -> dict[Node, Node]:
    """Immediate dominators of every node reachable from ``entry``.

    Returns ``{node: idom}`` with ``idom[entry] == entry``. Nodes not
    reachable from ``entry`` are absent.
    """
    order: list[Node] = []  # reverse post-order, built from a DFS
    visited: set[Node] = set()
    # Iterative post-order DFS.
    stack: list[tuple[Node, Iterable[Node]]] = [(entry, iter(successors(entry)))]
    visited.add(entry)
    while stack:
        node, succ_iter = stack[-1]
        advanced = False
        for succ in succ_iter:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(successors(succ))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()  # now reverse post-order
    index = {node: i for i, node in enumerate(order)}

    preds: dict[Node, list[Node]] = {node: [] for node in order}
    for node in order:
        for succ in successors(node):
            if succ in index:
                preds[succ].append(node)

    idom: dict[Node, Node] = {entry: entry}

    def intersect(a: Node, b: Node) -> Node:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order[1:]:
            new_idom: Node | None = None
            for pred in preds[node]:
                if pred in idom:
                    new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def reachable_blocks(fn: FunctionIR) -> set[int]:
    """Block ids reachable from the function entry (forward CFG,
    :data:`VIRTUAL_EXIT` excluded). Dead blocks — e.g. code lowered
    after an unconditional ``return`` — are not in this set."""
    blocks = fn.block_map()
    reachable: set[int] = set()
    stack = [fn.entry_block.id]
    while stack:
        node = stack.pop()
        if node in reachable or node == VIRTUAL_EXIT:
            continue
        reachable.add(node)
        stack.extend(blocks[node].successors())
    return reachable


def dominators_of(fn: FunctionIR) -> dict[int, int]:
    """Immediate dominators of a function's blocks (by block id).

    Only blocks reachable from the entry appear (both as keys and as
    values): unreachable blocks have no dominators, not degenerate ones.
    """
    blocks = fn.block_map()

    def successors(block_id: int) -> list[int]:
        if block_id == VIRTUAL_EXIT:
            return []
        return [s for s in blocks[block_id].successors() if s != VIRTUAL_EXIT]

    return immediate_dominators(fn.entry_block.id, successors)


def post_dominators(fn: FunctionIR) -> dict[int, int]:
    """Immediate post-dominators of a function's blocks.

    The reverse CFG is rooted at :data:`VIRTUAL_EXIT`; every ``Ret`` block
    has an edge to it. Blocks that cannot reach the exit (infinite loops)
    are absent from the result — and so are blocks unreachable from the
    function entry: a dead block after a ``return`` that jumps into live
    code still reaches the exit, but it never executes, so including it
    would both pollute live blocks' predecessor sets and hand callers
    idom entries for blocks no execution visits.
    """
    reachable = reachable_blocks(fn)
    preds = fn.predecessors()

    def reverse_successors(block_id: int) -> list[int]:
        return [p for p in preds.get(block_id, [])
                if p in reachable]

    ipdom = immediate_dominators(VIRTUAL_EXIT, reverse_successors)
    ipdom.pop(VIRTUAL_EXIT, None)
    return ipdom


def dominates(idom: dict[Node, Node], entry: Node, a: Node, b: Node) -> bool:
    """True iff ``a`` dominates ``b`` under the idom map ``idom``."""
    node = b
    while True:
        if node == a:
            return True
        if node == entry or node not in idom:
            return False
        parent = idom[node]
        if parent == node:
            return node == a
        node = parent
