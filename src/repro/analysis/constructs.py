"""The static construct table.

A *construct* (paper §II) is a code region considered for asynchronous
execution: a procedure, a loop, or a conditional. At the IR level:

* every function is a ``PROCEDURE`` construct, headed by its entry pc;
* every ``Branch`` instruction is a predicate heading either a ``LOOP``
  construct (if it is the canonical branch of a natural loop) or a
  ``COND`` construct, terminated at its immediate post-dominator.

For each predicate the table precomputes:

``ipostdom_block``
    the block id of the branch's immediate post-dominator (``None`` when
    it is the virtual exit — the construct then ends at procedure exit);
``region``
    every block reachable from the branch without passing through the
    post-dominator. The runtime pops a predicate's stack entry as soon as
    control enters a block outside its region, which generalizes the
    paper's rule (5) to early exits (``break`` past an unclosed ``if``,
    multi-branch loop conditions such as ``while (a && b)``, ``return``);
``loop_body``
    for canonical loop predicates, the natural loop's block set; rule (4)
    pops every predicate entry from the previous iteration before pushing
    the new one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.dominance import post_dominators
from repro.analysis.loops import find_loops
from repro.ir import instructions as ins
from repro.ir.cfg import VIRTUAL_EXIT, ProgramIR


class ConstructKind(enum.Enum):
    """What kind of region a construct covers."""

    PROCEDURE = "procedure"
    LOOP = "loop"
    COND = "cond"


@dataclass
class StaticConstruct:
    """Static description of one profiled construct."""

    pc: int
    kind: ConstructKind
    fn_name: str
    line: int
    col: int
    name: str
    hint: str | None = None
    #: Block id containing the predicate (``None`` for procedures).
    block_id: int | None = None
    ipostdom_block: int | None = None
    region: frozenset[int] | None = None
    loop_body: frozenset[int] | None = None
    #: For loops: symbolic names ("fn.var") of the loop's control
    #: variables — local scalars stored in the header or back-edge
    #: source blocks. A compiled binary keeps these in registers, so
    #: valgrind-based Alchemist never observes their dependences;
    #: reports exclude them from violation counts by default.
    induction_vars: frozenset[str] = frozenset()

    @property
    def is_loop(self) -> bool:
        return self.kind is ConstructKind.LOOP

    def describe(self) -> str:
        return f"{self.name} at line {self.line}"


class ConstructTable:
    """All static constructs of a program, plus the runtime lookup maps."""

    def __init__(self, program: ProgramIR):
        self.program = program
        #: Construct head pc -> static construct (procedures + predicates).
        self.by_pc: dict[int, StaticConstruct] = {}
        #: Function name -> procedure construct.
        self.procedures: dict[str, StaticConstruct] = {}
        self._build()

    def _build(self) -> None:
        for fn in self.program.functions.values():
            proc = StaticConstruct(
                pc=fn.entry_pc,
                kind=ConstructKind.PROCEDURE,
                fn_name=fn.name,
                line=fn.line,
                col=fn.col,
                name=fn.name,
            )
            self.by_pc[proc.pc] = proc
            self.procedures[fn.name] = proc

            ipdom = post_dominators(fn)
            loops = find_loops(fn)
            canonical: dict[int, object] = {}
            for loop in loops:
                if loop.canonical_branch_pc is not None:
                    canonical[loop.canonical_branch_pc] = loop

            blocks = fn.block_map()
            for block in fn.blocks:
                term = block.terminator
                if not isinstance(term, ins.Branch):
                    continue
                post = ipdom.get(block.id)
                ipostdom_block = None if post in (None, VIRTUAL_EXIT) else post
                region = _region_of(blocks, block.id, ipostdom_block)
                loop = canonical.get(term.pc)
                induction: frozenset[str] = frozenset()
                if loop is not None:
                    kind = ConstructKind.LOOP
                    name = f"loop({fn.name}:{term.line})"
                    induction = frozenset(
                        f"{fn.name}.{slot.name}" for slot in
                        loop_control_stores(blocks, block.id, loop))
                else:
                    kind = ConstructKind.COND
                    name = f"{term.hint}({fn.name}:{term.line})"
                self.by_pc[term.pc] = StaticConstruct(
                    pc=term.pc,
                    kind=kind,
                    fn_name=fn.name,
                    line=term.line,
                    col=term.col,
                    name=name,
                    hint=term.hint,
                    block_id=block.id,
                    ipostdom_block=ipostdom_block,
                    region=region,
                    loop_body=loop.body if loop is not None else None,
                    induction_vars=induction,
                )

    # -- queries -----------------------------------------------------------

    def static_count(self) -> int:
        """Number of static constructs (the paper's Table III 'Static')."""
        return len(self.by_pc)

    def predicate(self, pc: int) -> StaticConstruct:
        construct = self.by_pc[pc]
        if construct.kind is ConstructKind.PROCEDURE:
            raise KeyError(f"pc {pc} heads a procedure, not a predicate")
        return construct

    def loops(self) -> list[StaticConstruct]:
        return [c for c in self.by_pc.values() if c.is_loop]


def loop_control_stores(blocks, header_block: int, loop) -> list:
    """Local scalar slots stored in a loop's *control blocks* — the
    header and the back-edge sources (a ``for`` step block, a ``while``
    body's trailing increment). Shared by the construct table (for
    induction-variable names) and the task-graph extractor (for
    induction-variable frame offsets)."""
    control_blocks = {header_block}
    control_blocks.update(src for src, _ in loop.back_edges)
    slots = []
    for block_id in control_blocks:
        for instr in blocks[block_id].instrs:
            if (isinstance(instr, ins.Store)
                    and isinstance(instr.slot, ins.LocalSlot)
                    and not instr.slot.is_array):
                slots.append(instr.slot)
    return slots


def _region_of(blocks, branch_block: int,
               ipostdom_block: int | None) -> frozenset[int]:
    """Blocks reachable from the branch without crossing its post-dominator
    (the branch's own block included; the post-dominator excluded)."""
    region = {branch_block}
    stack = [s for s in blocks[branch_block].successors()
             if s != VIRTUAL_EXIT and s != ipostdom_block]
    while stack:
        node = stack.pop()
        if node in region:
            continue
        region.add(node)
        for succ in blocks[node].successors():
            if succ != VIRTUAL_EXIT and succ != ipostdom_block:
                stack.append(succ)
    return frozenset(region)
