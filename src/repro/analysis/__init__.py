"""Static analyses feeding the profiler.

The paper's instrumentation rules (Fig. 5) need to know, for every
predicate, (a) whether it is a loop predicate and (b) its immediate
post-dominator. Both come from here: classic iterative dominator /
post-dominator computation and natural-loop detection, packaged into a
:class:`repro.analysis.constructs.ConstructTable`.
"""

from repro.analysis.constructs import (ConstructKind, ConstructTable,
                                       StaticConstruct)
from repro.analysis.dominance import immediate_dominators, post_dominators
from repro.analysis.loops import LoopInfo, find_loops

__all__ = [
    "ConstructKind",
    "ConstructTable",
    "StaticConstruct",
    "immediate_dominators",
    "post_dominators",
    "LoopInfo",
    "find_loops",
]
