"""130.li (XLisp) port (paper Fig. 6(d), Table III row 4).

XLisp's batch loop reads expressions from files and evaluates them.
The paper's Fig. 6(d): C2 is the batch loop (parallelized in [7]); C1
is ``xlload``, called once *before* the loop and once per iteration —
which is why C1 retires slightly more instructions than C2. Evaluation
is a recursive tree walk, exercising the profiler's recursion-safe
nesting counters.
"""

from __future__ import annotations

from repro.workloads.base import PaperFacts, ParallelTarget, Workload


def source(batch_files: int = 5, nodes_per_file: int = 40) -> str:
    # Each progn chain allocates at most 16 cons cells (a full depth-3
    # expression tree plus the chain node) of 3 words each.
    chains_per_file = nodes_per_file // 8
    heap_words = (batch_files + 1) * chains_per_file * 52 + 64
    return f"""\
// 130.li-like: xlload builds cons-cell expression trees; xeval walks them
int heap[{heap_words}]; // triples: [tag, left/value, right]
int heap_top;
int load_state;
int gc_pressure;
int exprs_loaded;

int cons(int tag, int left, int right) {{
    int node = heap_top;
    heap[node] = tag;
    heap[node + 1] = left;
    heap[node + 2] = right;
    heap_top += 3;
    gc_pressure++;
    return node;
}}

int load_rand() {{
    load_state = (load_state * 1103515245 + 12345) % 2147483648;
    return load_state / 1024;
}}

int build_expr(int depth) {{
    // Parse one expression from the "file" (the load_state cursor).
    int r = load_rand();
    if (depth == 0 || r % 5 == 0) {{
        return cons(0, r % 100, 0); // number leaf
    }}
    int op = 1 + r % 4; // + - * min
    int left = build_expr(depth - 1);
    int right = build_expr(depth - 1);
    return cons(op, left, right);
}}

int xlload(int fileid) {{
    load_state = fileid * 7919 + 13;
    int root = 0;
    int count = 0;
    while (count < {nodes_per_file // 8}) {{
        root = cons(5, build_expr(3), root); // progn chain
        count++;
    }}
    exprs_loaded += count;
    return root;
}}

int xeval(int node) {{
    int tag = heap[node];
    if (tag == 0) {{
        return heap[node + 1];
    }}
    if (tag == 5) {{
        int value = xeval(heap[node + 1]);
        if (heap[node + 2] != 0) {{
            int rest = xeval(heap[node + 2]);
            return (value + rest) % 1000003;
        }}
        return value;
    }}
    int left = xeval(heap[node + 1]);
    int right = xeval(heap[node + 2]);
    if (tag == 1) {{
        return (left + right) % 1000003;
    }}
    if (tag == 2) {{
        return (left - right) % 1000003;
    }}
    if (tag == 3) {{
        return (left * right) % 1000003;
    }}
    return left < right ? left : right;
}}

int main() {{
    int total = 0;
    int init = xlload(0); // initial load before the batch loop
    total += xeval(init);
    for (int f = 0; f < {batch_files}; f++) {{ // PARALLEL-LISP-BATCH
        int root = xlload(f + 1);
        total = (total + xeval(root)) % 1000003;
    }}
    print(total, heap_top, exprs_loaded);
    return 0;
}}
"""


def build(scale: float = 1.0) -> Workload:
    files = max(3, round(5 * scale))
    nodes = max(24, round(40 * scale))
    return Workload(
        name="130.li",
        description="130.li: batch loop + xlload + recursive evaluator",
        source=source(files, nodes),
        paper=PaperFacts("15K", 190, 13_772_859, 0.12, 28.8),
        targets=[
            ParallelTarget(
                marker="PARALLEL-LISP-BATCH", fn_name="main",
                paper_raw=-1, paper_waw=-1, paper_war=-1,
                private_vars=("load_state", "gc_pressure", "exprs_loaded",
                              "heap_top", "heap"),
            ),
        ],
        expected_outputs=1,
    )
