"""Delaunay mesh refinement port (paper §IV-B.1, Table III row 8).

The paper's negative control: refinement pops a bad triangle from a
worklist, splits it against the shared mesh, and pushes new bad
triangles — every iteration reads and writes the worklist cursors,
the triangle tables and the point table, so the computation-heavy
constructs carry hundreds of violating static RAW dependences (720 on
the largest one) and Alchemist correctly reports the program as not
amenable to this style of parallelization.

The port runs the same worklist pattern over a synthetic quality
metric; the split routine is deliberately spread over many distinct
statements so the *static* violating-dependence count is large, as in
the paper.
"""

from __future__ import annotations

from repro.workloads.base import PaperFacts, ParallelTarget, Workload


def source(initial: int = 24, limit: int = 120) -> str:
    max_tri = initial + limit * 3 + 8
    max_pts = initial * 3 + limit + 8
    wl = max_tri * 2
    return f"""\
// Delaunay-like refinement: worklist over a shared mesh
int tri_a[{max_tri}];
int tri_b[{max_tri}];
int tri_c[{max_tri}];
int tri_alive[{max_tri}];
int ntri;
int px[{max_pts}];
int py[{max_pts}];
int npts;
int worklist[{wl}];
int wl_head;
int wl_tail;
int split_count;
int seed_state;

int srand2() {{
    seed_state = (seed_state * 1103515245 + 12345) % 2147483648;
    return seed_state / 1024;
}}

int quality(int t) {{
    int ax = px[tri_a[t]];
    int ay = py[tri_a[t]];
    int bx = px[tri_b[t]];
    int by = py[tri_b[t]];
    int cx = px[tri_c[t]];
    int cy = py[tri_c[t]];
    int ab = (ax - bx) * (ax - bx) + (ay - by) * (ay - by);
    int bc = (bx - cx) * (bx - cx) + (by - cy) * (by - cy);
    int ca = (cx - ax) * (cx - ax) + (cy - ay) * (cy - ay);
    int longest = ab;
    if (bc > longest) {{
        longest = bc;
    }}
    if (ca > longest) {{
        longest = ca;
    }}
    int shortest = ab;
    if (bc < shortest) {{
        shortest = bc;
    }}
    if (ca < shortest) {{
        shortest = ca;
    }}
    if (shortest == 0) {{
        shortest = 1;
    }}
    return longest / shortest;
}}

void push_if_bad(int t) {{
    if (tri_alive[t] && quality(t) > 6) {{
        worklist[wl_tail % {wl}] = t;
        wl_tail++;
    }}
}}

void split(int t) {{
    // Insert the centroid and retriangulate t into three children.
    int a = tri_a[t];
    int b = tri_b[t];
    int c = tri_c[t];
    int mx = (px[a] + px[b] + px[c]) / 3 + srand2() % 5 - 2;
    int my = (py[a] + py[b] + py[c]) / 3 + srand2() % 5 - 2;
    int m = npts;
    px[m] = mx;
    py[m] = my;
    npts++;
    tri_alive[t] = 0;
    int t1 = ntri;
    tri_a[t1] = a;
    tri_b[t1] = b;
    tri_c[t1] = m;
    tri_alive[t1] = 1;
    ntri++;
    int t2 = ntri;
    tri_a[t2] = b;
    tri_b[t2] = c;
    tri_c[t2] = m;
    tri_alive[t2] = 1;
    ntri++;
    int t3 = ntri;
    tri_a[t3] = c;
    tri_b[t3] = a;
    tri_c[t3] = m;
    tri_alive[t3] = 1;
    ntri++;
    push_if_bad(t1);
    push_if_bad(t2);
    push_if_bad(t3);
    split_count++;
}}

int main() {{
    seed_state = 1234567;
    // Seed the initial mesh.
    for (int i = 0; i < {initial * 3}; i++) {{
        px[npts] = srand2() % 1000;
        py[npts] = srand2() % 1000;
        npts++;
    }}
    for (int i = 0; i < {initial}; i++) {{
        tri_a[ntri] = i * 3;
        tri_b[ntri] = i * 3 + 1;
        tri_c[ntri] = i * 3 + 2;
        tri_alive[ntri] = 1;
        ntri++;
    }}
    for (int i = 0; i < {initial}; i++) {{
        push_if_bad(i);
    }}
    // Refinement: every iteration conflicts with its successors through
    // the worklist, the triangle tables and the point table.
    int processed = 0;
    while (wl_head != wl_tail) {{ // PARALLEL-DELAUNAY-REFINE
        int t = worklist[wl_head % {wl}];
        wl_head++;
        if (tri_alive[t] == 0) {{
            continue;
        }}
        if (ntri + 3 >= {max_tri} || npts + 1 >= {max_pts}) {{
            break;
        }}
        split(t);
        processed++;
        if (processed >= {limit}) {{
            break;
        }}
    }}
    print(processed, ntri, npts, wl_tail - wl_head);
    return 0;
}}
"""


def build(scale: float = 1.0) -> Workload:
    initial = max(12, round(24 * scale))
    limit = max(40, round(120 * scale))
    return Workload(
        name="delaunay",
        description="Delaunay refinement: the non-parallelizable "
                    "worklist control",
        source=source(initial, limit),
        paper=PaperFacts("2K", 111, 14_307_332, 0.81, 266.3),
        targets=[
            ParallelTarget(
                marker="PARALLEL-DELAUNAY-REFINE", fn_name="main",
                paper_raw=-1, paper_waw=-1, paper_war=-1,
                private_vars=(),
            ),
        ],
        expected_outputs=1,
    )
