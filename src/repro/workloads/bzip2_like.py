"""bzip2-1.0 port (paper Table III row 2, Table IV rows 1-2, Table V).

bzip2 compresses each input file separately: a loop in ``main``
iterates over files (paper line 6932), and ``compress_stream``
iterates over fixed-size blocks of one file (paper line 5340). Both
loops share a ``BZFILE``-like global stream structure (``bzf_*``) —
the WAW/WAR conflicts the paper reports — and a leftover-flushing
``write_close`` after the block loop produces the RAW dependences the
paper traced to ``BZ2_bzWriteClose64``.

The block transform is a real move-to-front + run-length encoder, so
per-block work dominates and the file/block loops are profitable to
parallelize once ``bzf_*`` is privatized (paper speedup: 3.46x).
"""

from __future__ import annotations

from repro.workloads.base import (PaperFacts, PaperSpeedup, ParallelTarget,
                                  Workload)


def source(files: int = 3, blocks_per_file: int = 3,
           block: int = 32, alphabet: int = 64) -> str:
    outsz = files * (blocks_per_file + 1) * (block * 2 + 8) + 64
    return f"""\
// bzip2-like: per-file loop, per-block MTF+RLE, shared bzf stream state
int bzf_handle;
int bzf_total_in;
int bzf_buf_pos;
int bzf_mode;
int stream_crc;
int inbuf[{block}];
int mtf_table[{alphabet}];
int outbuf[{outsz}];
int outpos;
int file_blocks[{files}];
int in_state;

int next_byte() {{
    in_state = (in_state * 1103515245 + 12345) % 2147483648;
    return (in_state / 4096) % {alphabet};
}}

void read_block(int n) {{
    for (int i = 0; i < n; i++) {{
        inbuf[i] = next_byte();
    }}
    bzf_buf_pos = n;
}}

void mtf_rle_block(int n) {{
    for (int i = 0; i < {alphabet}; i++) {{
        mtf_table[i] = i;
    }}
    int run = 0;
    int last = -1;
    for (int i = 0; i < n; i++) {{
        int sym = inbuf[i];
        int rank = 0;
        while (mtf_table[rank] != sym) {{
            rank++;
        }}
        int r = rank;
        while (r > 0) {{
            mtf_table[r] = mtf_table[r - 1];
            r--;
        }}
        mtf_table[0] = sym;
        if (rank == last) {{
            run++;
            if (run == 255) {{
                outbuf[outpos++] = 255;
                outbuf[outpos++] = rank;
                run = 0;
            }}
        }} else {{
            if (run > 0) {{
                outbuf[outpos++] = run;
                outbuf[outpos++] = last;
            }}
            outbuf[outpos++] = rank;
            run = 0;
            last = rank;
        }}
        stream_crc = (stream_crc * 31 + rank) % 1000003;
    }}
    if (run > 0) {{
        outbuf[outpos++] = run;
        outbuf[outpos++] = last;
    }}
}}

int compress_stream(int fileid) {{
    bzf_mode = 2;
    int blocks = 0;
    int off = 0;
    int size = {blocks_per_file} * {block};
    while (off < size) {{ // PARALLEL-BZIP2-BLOCKS
        int n = size - off;
        if (n > {block}) {{
            n = {block};
        }}
        read_block(n);
        bzf_total_in += n;
        mtf_rle_block(n);
        blocks++;
        off += n;
    }}
    // write_close: flush leftovers (BZ2_bzWriteClose64 in the paper)
    outbuf[outpos++] = bzf_total_in & 255;
    outbuf[outpos++] = stream_crc & 255;
    bzf_mode = 0;
    return blocks;
}}

int main() {{
    for (int f = 0; f < {files}; f++) {{ // PARALLEL-BZIP2-FILES
        bzf_handle = f + 3;
        in_state = f * 9973 + 7;
        file_blocks[f] = compress_stream(f);
    }}
    int total_blocks = 0;
    for (int f = 0; f < {files}; f++) {{
        total_blocks += file_blocks[f];
    }}
    int crc = 0;
    for (int j = 0; j < outpos; j++) {{
        crc = (crc * 131 + outbuf[j]) % 1000003;
    }}
    print(total_blocks, outpos, crc);
    return 0;
}}
"""


def build(scale: float = 1.0) -> Workload:
    files = max(2, round(4 * scale))
    blocks = max(2, round(3 * scale))
    return Workload(
        name="bzip2",
        description="bzip2-1.0: per-file and per-block compression "
                    "sharing a BZFILE-like stream",
        source=source(files, blocks),
        paper=PaperFacts("7K", 157, 134_832, 1.39, 990.8),
        targets=[
            ParallelTarget(
                marker="PARALLEL-BZIP2-FILES", fn_name="main",
                paper_raw=3, paper_waw=103, paper_war=0,
                private_vars=("bzf_handle", "bzf_total_in", "bzf_buf_pos",
                              "bzf_mode", "stream_crc", "inbuf",
                              "mtf_table", "outpos", "in_state"),
            ),
            ParallelTarget(
                marker="PARALLEL-BZIP2-BLOCKS", fn_name="compress_stream",
                paper_raw=23, paper_waw=53, paper_war=63,
                private_vars=("bzf_total_in", "bzf_buf_pos", "stream_crc",
                              "inbuf", "mtf_table", "outpos", "in_state"),
            ),
        ],
        paper_speedup=PaperSpeedup(40.92, 11.82),
        expected_outputs=1,
    )
