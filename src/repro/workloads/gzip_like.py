"""gzip-1.3.5 port (paper Fig. 2/3, Fig. 6(a,b), Table III row 3).

Structure mirrors the paper's running example: ``zip`` processes input
literals one at a time into window/flag/literal buffers and calls
``flush_block`` whenever the literal buffer fills; ``flush_block``
encodes literals into a bit buffer (``bi_buf``/``bi_valid``), emits
bytes through ``outbuf[outcnt++]``, resets ``last_flags`` and returns
the literal count. The conflicts the paper highlights all exist here:

* return value -> call site (``Tdep = 1``);
* ``outcnt`` written at flush end, read right after the call (RAW+WAW);
* ``flag_buf`` read during encoding, rewritten by the zip loop (WAR);
* ``input_len += len`` against itself across calls (large ``Tdep``).

The outer per-file loop is the paper's parallelized C1 (the loop at
gzip line 3404); ``flush_block`` is C9.
"""

from __future__ import annotations

from repro.workloads.base import PaperFacts, ParallelTarget, Workload


def source(files: int = 2, literals: int = 400) -> str:
    """MiniC source, scaled by file count and literals per file."""
    lbuf = 128
    outsz = files * literals * 2 + 64 * files + 16
    return f"""\
// gzip-like compressor: zip loop + flush_block (paper Fig. 2)
int window[256];
int flag_buf[{lbuf + 8}];
int l_buf[{lbuf}];
int outbuf[{outsz}];
int freq[64];
int outcnt;
int last_flags;
int bi_buf;
int bi_valid;
int input_len;
int in_state;

int next_byte() {{
    in_state = (in_state * 1103515245 + 12345) % 2147483648;
    return (in_state / 65536) % 251;
}}

int flush_block(int buf[], int len) {{
    flag_buf[last_flags] = 1;
    input_len += len;
    int k = 0;
    do {{
        int lit = buf[k];
        int flag = flag_buf[k % {lbuf + 8}];
        int code = freq[lit % 64] > 4 ? (lit & 31) : (lit | 256);
        int bits = flag ? 6 : 10;
        bi_buf = bi_buf | (code << bi_valid);
        bi_valid += bits;
        while (bi_valid > 7) {{
            outbuf[outcnt++] = bi_buf & 255;
            bi_buf = bi_buf >> 8;
            bi_valid -= 8;
        }}
        k++;
    }} while (k < len);
    last_flags = 0;
    outbuf[outcnt++] = bi_buf & 255;
    return len;
}}

int zip(int seed) {{
    in_state = seed * 77 + 1;
    int c2 = 0;
    while (c2 < 64) {{ freq[c2] = 0; c2++; }}
    int processed = 0;
    int nlit = 0;
    int i = 0;
    while (i < {literals}) {{
        int c = next_byte();
        window[i % 256] = c;
        freq[c % 64]++;
        l_buf[nlit] = c;
        flag_buf[nlit] = c & 1;
        last_flags++;
        nlit++;
        if (nlit == {lbuf}) {{
            processed += flush_block(l_buf, nlit);
            nlit = 0;
        }}
        i++;
    }}
    if (nlit > 0) {{
        processed += flush_block(l_buf, nlit);
    }}
    return processed;
}}

int main() {{
    int total = 0;
    for (int f = 0; f < {files}; f++) {{ // PARALLEL-GZIP-FILES
        total += zip(f);
    }}
    int crc = 0;
    for (int j = 0; j < outcnt; j++) {{
        crc = (crc * 131 + outbuf[j]) % 1000003;
    }}
    outbuf[outcnt++] = crc & 255;
    print(total, outcnt, crc);
    return 0;
}}
"""


def build(scale: float = 1.0) -> Workload:
    files = max(2, round(2 * scale))
    literals = max(128, round(400 * scale))
    return Workload(
        name="gzip",
        description="gzip-1.3.5: zip loop + flush_block bit encoder",
        source=source(files, literals),
        paper=PaperFacts("8K", 100, 570_897, 1.06, 280.4),
        targets=[
            ParallelTarget(
                marker="PARALLEL-GZIP-FILES", fn_name="main",
                paper_raw=-1, paper_waw=-1, paper_war=-1,
                private_vars=("window", "flag_buf", "l_buf", "freq",
                              "in_state", "last_flags", "bi_buf",
                              "bi_valid", "outcnt"),
            ),
        ],
        expected_outputs=1,
    )
