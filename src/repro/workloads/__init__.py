"""MiniC ports of the paper's evaluation benchmarks (Table III).

Each module rebuilds one benchmark's *dependence structure* — the thing
the evaluation actually measures — at interpreter-friendly scale:

========  =============================================================
gzip      ``zip`` loop + ``flush_block`` with ``flag_buf``/``outcnt``/
          ``bi_buf`` conflicts (Fig. 2/3, Fig. 6(a,b))
bzip2     per-file loop and per-block loop sharing a ``bzf``-like
          stream state (Table IV/V)
parser    I/O-bound dictionary loop vs. parallel sentence loop
          (Fig. 6(c))
lisp      batch loop + ``xlload`` + recursive evaluator (Fig. 6(d))
ogg       per-file encode loop with shared ``errors``/sample counters
          (Table IV/V)
aes       CTR-mode block cipher with the ``ivec`` increment chain
          (Table IV/V)
par2      GF(256) Reed-Solomon block loop + file loop with a
          file-close conflict (Table IV/V)
delaunay  worklist mesh refinement — the paper's non-parallelizable
          control (§IV-B.1)
========  =============================================================

Two heap-centric extras (not Table III rows) exercise MiniC's pointer
and ``malloc``/``free`` support:

=========  ============================================================
wordcount  chained-hash dictionary on the heap: serial build phase +
           parallel query loop with a shared counter
lisp-cons  130.li with real cons cells; per-iteration tree free/realloc
           recycles heap addresses (shadow-clearing stress)
=========  ============================================================
"""

from repro.workloads.base import PaperFacts, ParallelTarget, Workload
from repro.workloads.registry import (EXTRA_ORDER, TABLE3_ORDER,
                                      all_workloads, extra_workloads, get,
                                      names)

__all__ = [
    "Workload",
    "PaperFacts",
    "ParallelTarget",
    "get",
    "names",
    "all_workloads",
    "extra_workloads",
    "TABLE3_ORDER",
    "EXTRA_ORDER",
]
