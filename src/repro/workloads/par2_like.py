"""par2cmdline port (paper Table III row 7, Table IV rows 5-6, Table V).

Par2 creates recovery archives with Reed-Solomon coding over GF(2^8).
The paper parallelized two loops:

* ``Par2Creator::OpenSourceFiles`` (line 489): per-file read +
  checksum; its single violating RAW dependence was a file-close
  conflict — the parallel version moves closing after the join
  (modeled by privatizing the open-handle counter);
* ``Par2Creator::ProcessData`` (line 887): per-recovery-block
  GF multiply-accumulate over all source data — embarrassingly
  parallel once the output cursor is private.

GF tables are real log/antilog tables over the 0x11D polynomial; table
construction plus file reading is the serial fraction that keeps the
paper's speedup at 1.78x.
"""

from __future__ import annotations

from repro.workloads.base import (PaperFacts, PaperSpeedup, ParallelTarget,
                                  Workload)


def source(files: int = 4, file_words: int = 64,
           recovery_blocks: int = 6) -> str:
    data_words = files * file_words
    return f"""\
// par2-like: GF(256) Reed-Solomon recovery block computation
int gf_exp[512];
int gf_log[256];
int source_data[{data_words}];
int file_crc[{files}];
int open_handles[{files}];
int nopen;
int recovery[{recovery_blocks * file_words}];
int rec_crc[{recovery_blocks}];
int in_state;

void gf_init() {{
    int x = 1;
    for (int i = 0; i < 255; i++) {{
        gf_exp[i] = x;
        gf_log[x] = i;
        x = x << 1;
        if (x > 255) {{
            x = (x ^ 285) & 255; // reduce by 0x11D
        }}
    }}
    for (int i = 255; i < 512; i++) {{
        gf_exp[i] = gf_exp[i - 255];
    }}
}}

int gf_mul(int a, int b) {{
    if (a == 0 || b == 0) {{
        return 0;
    }}
    return gf_exp[gf_log[a] + gf_log[b]];
}}

void open_source_files() {{
    for (int f = 0; f < {files}; f++) {{ // PARALLEL-PAR2-OPEN
        open_handles[f] = f + 3;
        nopen++;
        in_state = f * 40503 + 11;
        int crc = 0;
        for (int i = 0; i < {file_words}; i++) {{
            in_state = (in_state * 1103515245 + 12345) % 2147483648;
            int byte = (in_state / 4096) % 256;
            source_data[f * {file_words} + i] = byte;
            crc = (crc * 31 + byte) % 1000003;
        }}
        file_crc[f] = crc;
        nopen--; // file close: the conflict the paper's profile caught
    }}
}}

void process_data() {{
    for (int r = 0; r < {recovery_blocks}; r++) {{ // PARALLEL-PAR2-PROCESS
        int base = r * {file_words};
        for (int f = 0; f < {files}; f++) {{
            int coef = gf_exp[(r * (f + 1)) % 255];
            for (int i = 0; i < {file_words}; i++) {{
                int prod = gf_mul(coef, source_data[f * {file_words} + i]);
                recovery[base + i] = recovery[base + i] ^ prod;
            }}
        }}
        int crc = 0;
        for (int i = 0; i < {file_words}; i++) {{
            crc = (crc * 31 + recovery[base + i]) % 1000003;
        }}
        rec_crc[r] = crc;
    }}
}}

int main() {{
    gf_init();
    open_source_files();
    process_data();
    int total = 0;
    for (int f = 0; f < {files}; f++) {{
        total = (total + file_crc[f]) % 1000003;
    }}
    for (int r = 0; r < {recovery_blocks}; r++) {{
        total = (total + rec_crc[r]) % 1000003;
    }}
    print(total, nopen);
    return 0;
}}
"""


def build(scale: float = 1.0) -> Workload:
    files = max(3, round(4 * scale))
    recovery = max(3, round(6 * scale))
    return Workload(
        name="par2",
        description="par2cmdline: Reed-Solomon recovery blocks over "
                    "GF(256)",
        source=source(files, recovery_blocks=recovery),
        paper=PaperFacts("13K", 125, 4_437, 1.95, 324.0),
        targets=[
            ParallelTarget(
                marker="PARALLEL-PAR2-PROCESS", fn_name="process_data",
                paper_raw=1, paper_waw=12, paper_war=19,
                private_vars=("in_state",),
            ),
            ParallelTarget(
                marker="PARALLEL-PAR2-OPEN", fn_name="open_source_files",
                paper_raw=0, paper_waw=2, paper_war=12,
                private_vars=("nopen", "in_state"),
            ),
        ],
        paper_speedup=PaperSpeedup(11.25, 6.33),
        expected_outputs=1,
    )
