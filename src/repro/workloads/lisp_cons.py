"""130.li variant with real cons cells: malloc'd trees, freed per batch.

The Table III port (:mod:`repro.workloads.lisp_like`) simulates cons
cells inside a global array because it predates MiniC's heap. This
variant exercises the real allocator: each batch iteration builds its
expression tree from ``malloc``'d 3-word cells, evaluates it with the
same recursive walk, then frees the whole tree — so the next iteration
*recycles the same heap addresses*. The profile must show the batch
loop's cross-iteration dependences only through genuinely shared state
(``load_state``, ``exprs_loaded``, the running total), never through
recycled cell addresses; that discrimination is exactly what the
shadow-memory clearing on ``free`` provides.
"""

from __future__ import annotations

from repro.workloads.base import ParallelTarget, Workload


def source(batch_files: int = 5, exprs_per_file: int = 5) -> str:
    return f"""\
// 130.li with real cons cells: malloc'd trees, recursive eval, free
int load_state;
int exprs_loaded;
int cells_live;

int *cons(int tag, int left, int right) {{
    int *cell = malloc(3);
    cell[0] = tag;
    cell[1] = left;
    cell[2] = right;
    cells_live++;
    return cell;
}}

int load_rand() {{
    load_state = (load_state * 1103515245 + 12345) % 2147483648;
    return load_state / 1024;
}}

int *build_expr(int depth) {{
    int r = load_rand();
    if (depth == 0 || r % 5 == 0) {{
        return cons(0, r % 100, 0); // number leaf
    }}
    int op = 1 + r % 4;
    int *left = build_expr(depth - 1);
    int *right = build_expr(depth - 1);
    return cons(op, left, right);
}}

int *xlload(int fileid) {{
    load_state = fileid * 7919 + 13;
    int *root = 0;
    int count = 0;
    while (count < {exprs_per_file}) {{
        root = cons(5, build_expr(3), root); // progn chain
        count++;
    }}
    exprs_loaded += count;
    return root;
}}

int xeval(int *node) {{
    int tag = node[0];
    if (tag == 0) {{
        return node[1];
    }}
    if (tag == 5) {{
        int value = xeval(node[1]);
        if (node[2] != 0) {{
            int rest = xeval(node[2]);
            return (value + rest) % 1000003;
        }}
        return value;
    }}
    int left = xeval(node[1]);
    int right = xeval(node[2]);
    if (tag == 1) {{
        return (left + right) % 1000003;
    }}
    if (tag == 2) {{
        return (left - right) % 1000003;
    }}
    if (tag == 3) {{
        return (left * right) % 1000003;
    }}
    return left < right ? left : right;
}}

void free_tree(int *node) {{
    if (node == 0) {{
        return;
    }}
    if (node[0] != 0) {{
        free_tree(node[1]);
        free_tree(node[2]);
    }}
    free(node);
    cells_live--;
}}

int main() {{
    int total = 0;
    int *init = xlload(0); // initial load before the batch loop
    total += xeval(init);
    free_tree(init);
    int f;
    for (f = 0; f < {batch_files}; f++) {{ // PARALLEL-LISPCONS-BATCH
        int *root = xlload(f + 1);
        total = (total + xeval(root)) % 1000003;
        free_tree(root);
    }}
    print(total, exprs_loaded, cells_live);
    return 0;
}}
"""


def build(scale: float = 1.0) -> Workload:
    files = max(3, round(5 * scale))
    exprs = max(3, round(5 * scale))
    return Workload(
        name="lisp-cons",
        description=("130.li with real malloc'd cons cells; trees are "
                     "freed per batch iteration so heap addresses recycle"),
        source=source(files, exprs),
        targets=[
            ParallelTarget(
                marker="PARALLEL-LISPCONS-BATCH", fn_name="main",
                paper_raw=-1, paper_waw=-1, paper_war=-1,
                private_vars=("load_state", "exprs_loaded", "cells_live"),
            ),
        ],
        expected_outputs=1,
    )
