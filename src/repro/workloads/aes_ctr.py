"""AES counter mode port (paper Table III row 6, Table IV row 4, Table V).

The paper extracts AES-CTR from OpenSSL: the main loop reads input a
block at a time, encrypts the counter (``ivec``) into a keystream,
XORs it with the plaintext, and increments ``ivec`` for the next block
(``AES_ctr128_inc``). The profile reported no blocking RAW dependences
for the loop itself but WAW/WAR conflicts on ``ivec``; the parallel
version gives each thread its own ``ivec``, computed from the block
index — modeled here by ``private_vars=("ivec",)``.

The cipher is a real (reduced) substitution-permutation network over
4-word blocks with an S-box and round keys; input reading is the
serial fraction that keeps the paper's speedup at 1.63x rather than
4x.
"""

from __future__ import annotations

from repro.workloads.base import (PaperFacts, PaperSpeedup, ParallelTarget,
                                  Workload)


def source(blocks: int = 24, rounds: int = 8) -> str:
    words = blocks * 4
    return f"""\
// AES-CTR-like: counter-mode block cipher with an ivec increment chain
int sbox[256];
int rkey[{rounds + 1}];
int ivec[4];
int inbuf[{words}];
int outbuf[{words}];
int ks[4];
int in_state;

void aes_init(int key) {{
    int s = key * 2 + 1;
    for (int i = 0; i < 256; i++) {{
        s = (s * 1103515245 + 12345) % 2147483648;
        sbox[i] = (s / 65536 + i * 97) % 256;
    }}
    for (int r = 0; r <= {rounds}; r++) {{
        s = (s * 1103515245 + 12345) % 2147483648;
        rkey[r] = s % 65536;
    }}
}}

void aes_encrypt_block() {{
    // Encrypt ivec into the keystream ks (SubBytes/ShiftRows/MixColumns
    // flavoured SPN over four 16-bit words).
    int w0 = ivec[0];
    int w1 = ivec[1];
    int w2 = ivec[2];
    int w3 = ivec[3];
    for (int r = 0; r < {rounds}; r++) {{
        int k = rkey[r];
        w0 = sbox[(w0 ^ k) & 255] | (sbox[((w0 ^ k) >> 8) & 255] << 8);
        w1 = sbox[(w1 + k) & 255] | (sbox[((w1 + k) >> 8) & 255] << 8);
        w2 = sbox[(w2 ^ w0) & 255] | (sbox[((w2 ^ w0) >> 8) & 255] << 8);
        w3 = sbox[(w3 + w1) & 255] | (sbox[((w3 + w1) >> 8) & 255] << 8);
        int t = w0;
        w0 = w1 ^ (w2 << 1 & 65535);
        w1 = w2 ^ (w3 << 1 & 65535);
        w2 = w3 ^ (t << 1 & 65535);
        w3 = t ^ rkey[r + 1];
    }}
    ks[0] = w0;
    ks[1] = w1;
    ks[2] = w2;
    ks[3] = w3;
}}

void ctr128_inc() {{
    ivec[3]++;
    if (ivec[3] > 65535) {{
        ivec[3] = 0;
        ivec[2]++;
        if (ivec[2] > 65535) {{
            ivec[2] = 0;
            ivec[1]++;
        }}
    }}
}}

int main() {{
    aes_init(42);
    // Serial input read: the loop "reads the input until it has an
    // entire block" (the paper's serial fraction).
    in_state = 7;
    for (int i = 0; i < {words}; i++) {{
        in_state = (in_state * 1103515245 + 12345) % 2147483648;
        inbuf[i] = in_state % 65536;
        in_state = (in_state + inbuf[i] * 3) % 2147483648;
    }}
    ivec[0] = 1;
    ivec[3] = 0;
    for (int b = 0; b < {blocks}; b++) {{ // PARALLEL-AES-CTR
        aes_encrypt_block();
        for (int w = 0; w < 4; w++) {{
            outbuf[b * 4 + w] = inbuf[b * 4 + w] ^ ks[w];
        }}
        ctr128_inc();
    }}
    int crc = 0;
    for (int j = 0; j < {words}; j++) {{
        crc = (crc * 131 + outbuf[j]) % 1000003;
    }}
    print(crc, ivec[3], ivec[2]);
    return 0;
}}
"""


def build(scale: float = 1.0) -> Workload:
    blocks = max(8, round(24 * scale))
    return Workload(
        name="aes",
        description="OpenSSL AES-CTR: per-block keystream encryption "
                    "chained through ivec",
        source=source(blocks),
        paper=PaperFacts("1K", 11, 2_850, 0.001, 0.396),
        targets=[
            ParallelTarget(
                marker="PARALLEL-AES-CTR", fn_name="main",
                paper_raw=0, paper_waw=7, paper_war=3,
                private_vars=("ivec", "ks"),
            ),
        ],
        paper_speedup=PaperSpeedup(9.46, 5.81),
        expected_outputs=1,
    )
