"""Workload registry, ordered as the paper's Table III.

Beyond the eight Table III ports, ``EXTRA_ORDER`` lists heap-centric
workloads added once MiniC gained pointers and ``malloc``/``free`` —
they exercise the aliasing patterns (§I) that the array-based ports
cannot, and back the heap-related ablation benches.
"""

from __future__ import annotations

from repro.workloads import (aes_ctr, bzip2_like, delaunay, gzip_like,
                             lisp_cons, lisp_like, ogg_like, par2_like,
                             parser_like, wordcount)
from repro.workloads.base import Workload

#: Table III row order.
TABLE3_ORDER = ["197.parser", "bzip2", "gzip", "130.li", "ogg", "aes",
                "par2", "delaunay"]

#: Heap-centric companions (not Table III rows).
EXTRA_ORDER = ["wordcount", "lisp-cons"]

_BUILDERS = {
    "197.parser": parser_like.build,
    "bzip2": bzip2_like.build,
    "gzip": gzip_like.build,
    "130.li": lisp_like.build,
    "ogg": ogg_like.build,
    "aes": aes_ctr.build,
    "par2": par2_like.build,
    "delaunay": delaunay.build,
    "wordcount": wordcount.build,
    "lisp-cons": lisp_cons.build,
}


def names(include_extra: bool = False) -> list[str]:
    """Workload names, Table III order (extras appended on request)."""
    if include_extra:
        return list(TABLE3_ORDER) + list(EXTRA_ORDER)
    return list(TABLE3_ORDER)


def get(name: str, scale: float = 1.0) -> Workload:
    """Build one workload by name (KeyError on unknown names)."""
    return _BUILDERS[name](scale)


def all_workloads(scale: float = 1.0) -> list[Workload]:
    """Build every Table III workload, in row order."""
    return [get(name, scale) for name in TABLE3_ORDER]


def extra_workloads(scale: float = 1.0) -> list[Workload]:
    """Build the heap-centric extra workloads."""
    return [get(name, scale) for name in EXTRA_ORDER]
