"""oggenc-1.0.1 port (paper Table III row 5, Table IV row 3, Table V).

Oggenc encodes WAV files to Ogg Vorbis; the paper parallelizes the
per-file loop in ``main`` (oggenc line 802) after privatizing the
shared ``errors`` flag and the samples-read counter — exactly the
violating dependences its profile reported. Per-file work here is a
real windowed-MDCT-style transform plus quantized bit packing, so the
per-file loop dominates and the simulated speedup is near-linear
(paper: 3.95x on 4 threads).
"""

from __future__ import annotations

from repro.workloads.base import (PaperFacts, PaperSpeedup, ParallelTarget,
                                  Workload)


def source(files: int = 4, frames: int = 3, frame: int = 24) -> str:
    outsz = files * frames * frame + 64
    return f"""\
// oggenc-like: per-file encode loop with shared error/sample counters
int errors;
int samples_read;
int outstream[{outsz}];
int outlen;
int file_bits[{files}];
int win[{frame}];
int pcm[{frame}];
int spectrum[{frame}];
int in_state;

void init_window() {{
    for (int i = 0; i < {frame}; i++) {{
        int x = i * 255 / {frame - 1};
        win[i] = (x * (510 - x)) / 255; // raised-cosine-ish lobe
    }}
}}

int read_samples(int fileid, int frameid) {{
    in_state = (fileid * 31 + frameid) * 2654435761 % 2147483648 + 99;
    for (int i = 0; i < {frame}; i++) {{
        in_state = (in_state * 1103515245 + 12345) % 2147483648;
        pcm[i] = in_state % 4096 - 2048;
    }}
    samples_read += {frame};
    return {frame};
}}

void forward_mdct() {{
    for (int k = 0; k < {frame}; k++) {{
        int acc = 0;
        for (int j = 0; j < {frame}; j++) {{
            int tw = win[(j + k) % {frame}] - 128;
            acc += pcm[j] * tw / 64;
        }}
        spectrum[k] = acc;
    }}
}}

int quantize_and_pack() {{
    int bits = 0;
    for (int k = 0; k < {frame}; k++) {{
        int q = spectrum[k] / 256;
        if (q > 127) {{
            q = 127;
            errors = errors | 1; // clipping
        }}
        if (q < -128) {{
            q = -128;
            errors = errors | 1;
        }}
        outstream[outlen++] = q & 255;
        bits += q < 0 ? 8 : 7;
    }}
    return bits;
}}

int encode_file(int fileid) {{
    int local_bits = 0;
    for (int fr = 0; fr < {frames}; fr++) {{
        read_samples(fileid, fr);
        forward_mdct();
        local_bits += quantize_and_pack();
    }}
    return local_bits;
}}

int main() {{
    init_window();
    for (int f = 0; f < {files}; f++) {{ // PARALLEL-OGG-FILES
        file_bits[f] = encode_file(f);
    }}
    int bits = 0;
    for (int f = 0; f < {files}; f++) {{
        bits += file_bits[f];
    }}
    int crc = 0;
    for (int j = 0; j < outlen; j++) {{
        crc = (crc * 131 + outstream[j]) % 1000003;
    }}
    print(bits, outlen, samples_read, errors, crc);
    return 0;
}}
"""


def build(scale: float = 1.0) -> Workload:
    files = max(3, round(4 * scale))
    frames = max(2, round(3 * scale))
    return Workload(
        name="ogg",
        description="oggenc-1.0.1: per-file MDCT encode with shared "
                    "errors/sample counters",
        source=source(files, frames),
        paper=PaperFacts("58K", 466, 4_173_029, 0.30, 70.7),
        targets=[
            ParallelTarget(
                marker="PARALLEL-OGG-FILES", fn_name="main",
                paper_raw=6, paper_waw=30, paper_war=17,
                private_vars=("errors", "samples_read", "outlen",
                              "in_state", "pcm", "spectrum"),
            ),
        ],
        paper_speedup=PaperSpeedup(136.27, 34.46),
        expected_outputs=1,
    )
