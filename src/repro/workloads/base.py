"""Workload descriptors shared by all benchmark ports."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PaperFacts:
    """What the paper's Table III reports for the original benchmark."""

    loc: str
    static_constructs: int
    dynamic_constructs: int
    orig_seconds: float
    prof_seconds: float

    @property
    def slowdown(self) -> float:
        return self.prof_seconds / self.orig_seconds


@dataclass(frozen=True)
class ParallelTarget:
    """One location the paper parallelized (Table IV row).

    ``marker`` is a substring of the target source line (markers keep
    line numbers robust under edits). Paper conflict counts are the
    static violating dependences Table IV reports.
    """

    marker: str
    fn_name: str
    paper_raw: int
    paper_waw: int
    paper_war: int
    #: Globals the paper's transformation privatizes (per-thread copies).
    private_vars: tuple[str, ...] = ()


@dataclass(frozen=True)
class PaperSpeedup:
    """Table V row."""

    seq_seconds: float
    par_seconds: float

    @property
    def speedup(self) -> float:
        return self.seq_seconds / self.par_seconds


@dataclass
class Workload:
    """One benchmark port."""

    name: str
    description: str
    source: str
    paper: PaperFacts | None = None
    targets: list[ParallelTarget] = field(default_factory=list)
    paper_speedup: PaperSpeedup | None = None
    #: Expected number of printed output tuples (correctness check).
    expected_outputs: int = 1
    workers: int = 4

    @property
    def loc(self) -> int:
        """Non-blank source lines of the MiniC port."""
        return sum(1 for line in self.source.splitlines() if line.strip())

    def line_of(self, marker: str) -> int:
        """1-based line number of the first source line containing
        ``marker``. Raises ``ValueError`` if absent."""
        for i, line in enumerate(self.source.splitlines(), start=1):
            if marker in line:
                return i
        raise ValueError(f"marker {marker!r} not found in {self.name}")

    def target_lines(self) -> list[tuple[ParallelTarget, int]]:
        return [(t, self.line_of(t.marker)) for t in self.targets]

    def primary_target(self) -> tuple[ParallelTarget, int]:
        """The location used for the Table V speedup simulation."""
        if not self.targets:
            raise ValueError(f"{self.name} has no parallel targets")
        target = self.targets[0]
        return target, self.line_of(target.marker)
