"""197.parser port (paper Fig. 6(c), Table III row 1).

The paper's Fig. 6(c): constructs C1 (the loop in ``read_dictionary``)
and C2 (``read_entry``) are *larger* than the parallelized sentence
loop C3 (parser line 1302) and show fewer violating dependences, but
cannot be parallelized because dictionary reading is I/O bound — here,
an input-cursor LCG chain that serializes ``read_entry`` calls. The
sentence loop's violations are shared statistics counters, which the
parallel version privatizes.
"""

from __future__ import annotations

from repro.workloads.base import PaperFacts, ParallelTarget, Workload


def source(words: int = 220, sentences: int = 20,
           sentence_len: int = 12) -> str:
    hash_size = 509
    return f"""\
// 197.parser-like: sequential dictionary load, parallel sentence parse
int dict_words[{words}];
int dict_cost[{words}];
int dict_hash[{hash_size}];
int dict_count;
int in_state;
int sentences_parsed;
int total_cost;
int parse_errors;

int read_entry() {{
    // I/O-bound: the entry is read character by character through the
    // same input cursor, serializing every call on its predecessor.
    int word = 0;
    for (int c = 0; c < 24; c++) {{
        in_state = (in_state * 1103515245 + 12345) % 2147483648;
        int ch = (in_state / 65536) % 96 + 32;
        word = (word * 31 + ch) % 1000003;
    }}
    return word;
}}

void read_dictionary() {{
    while (dict_count < {words}) {{ // C1: dictionary loop (I/O bound)
        int w = read_entry();
        int cost = (w % 7) + 1;
        dict_words[dict_count] = w;
        dict_cost[dict_count] = cost;
        dict_hash[w % {hash_size}] = dict_count + 1;
        dict_count++;
    }}
}}

int lookup(int word) {{
    int slot = dict_hash[word % {hash_size}];
    if (slot == 0) {{
        return -1;
    }}
    return slot - 1;
}}

int parse_sentence(int seed) {{
    // Linkage parsing against the read-only dictionary.
    int state = seed * 2654435761 % 2147483648 + 17;
    int cost = 0;
    int linked = 0;
    for (int t = 0; t < {sentence_len}; t++) {{
        state = (state * 1103515245 + 12345) % 2147483648;
        int word = (state / 1024) % 1000003;
        int idx = lookup(word);
        if (idx >= 0) {{
            cost += dict_cost[idx];
            linked++;
        }} else {{
            // unknown word: try affix-stripped variants
            for (int a = 1; a < 4; a++) {{
                int alt = lookup(word / (a * 10));
                if (alt >= 0) {{
                    cost += dict_cost[alt] + a;
                    linked++;
                    break;
                }}
            }}
        }}
        // chart costs: quadratic-ish disjunct pruning
        for (int l = 0; l < t; l++) {{
            cost = (cost * 3 + dict_words[(word + l) % {words}] % 13) % 65521;
        }}
    }}
    if (linked == 0) {{
        parse_errors++;
    }}
    return cost;
}}

int main() {{
    read_dictionary();
    for (int s = 0; s < {sentences}; s++) {{ // PARALLEL-PARSER-SENTENCES
        total_cost += parse_sentence(s);
        sentences_parsed++;
    }}
    print(sentences_parsed, total_cost, parse_errors, dict_count);
    return 0;
}}
"""


def build(scale: float = 1.0) -> Workload:
    words = max(60, round(220 * scale))
    sentences = max(6, round(20 * scale))
    return Workload(
        name="197.parser",
        description="197.parser: I/O-bound dictionary load vs. "
                    "parallelizable sentence loop",
        source=source(words, sentences),
        paper=PaperFacts("11K", 603, 31_763_541, 1.22, 279.5),
        targets=[
            ParallelTarget(
                marker="PARALLEL-PARSER-SENTENCES", fn_name="main",
                paper_raw=-1, paper_waw=-1, paper_war=-1,
                private_vars=("total_cost", "sentences_parsed",
                              "parse_errors"),
            ),
        ],
        expected_outputs=1,
    )
