"""Word-count over a malloc'd chained-hash dictionary.

A heap-centric companion to the 197.parser port: the paper's parser
builds its dictionary as a linked structure on the heap, which is
exactly the aliasing pattern static analysis cannot disambiguate and
dynamic profiling can (§I, "data parallelism is often not as readily
identifiable because different memory blocks at runtime usually are
mapped to the same abstract locations at compile time").

Structure:

* ``build_dictionary`` inserts pseudo-random words into a chained hash
  table whose buckets and nodes are ``malloc``'d — a serial phase with
  a dense dependence chain through ``table``/``nwords`` (profiled as
  *not* parallelizable, like parser's ``read_dictionary``);
* the query loop (``PARALLEL-WORDCOUNT-QUERY``) looks up disjoint
  pseudo-random key streams per "document" and records one result per
  document — parallelizable except for the shared ``lookups`` counter,
  the privatization hint the WAR/WAW profile surfaces.
"""

from __future__ import annotations

from repro.workloads.base import ParallelTarget, Workload


def source(documents: int = 8, words: int = 120,
           queries_per_doc: int = 60) -> str:
    return f"""\
// wordcount: chained-hash dictionary on the heap + parallel query loop
int NBUCKETS = 64;
int *table;        // bucket array: table[h] holds a chain head address
int nwords;
int lookups;       // shared query counter (the privatization candidate)
int results[{documents}];
int rng_state;

int next_word() {{
    rng_state = (rng_state * 1103515245 + 12345) % 2147483648;
    return rng_state % 500;
}}

int bucket_of(int key) {{
    return (key * 31 + 7) % NBUCKETS;
}}

int *find(int key) {{
    int h = bucket_of(key);
    int *node = table[h];
    while (node != 0) {{
        if (node[0] == key) {{
            return node;
        }}
        node = node[2];
    }}
    return 0;
}}

void insert(int key) {{
    int *node = find(key);
    if (node != 0) {{
        node[1]++;
        return;
    }}
    int *fresh = malloc(3); // [key, count, next]
    fresh[0] = key;
    fresh[1] = 1;
    int h = bucket_of(key);
    fresh[2] = table[h];
    table[h] = fresh;
    nwords++;
}}

void build_dictionary() {{
    rng_state = 42;
    int i;
    for (i = 0; i < {words}; i++) {{ // SERIAL-WORDCOUNT-BUILD
        insert(next_word());
    }}
}}

int count_document(int doc) {{
    int state = doc * 7919 + 13;
    int found = 0;
    int q;
    for (q = 0; q < {queries_per_doc}; q++) {{
        state = (state * 1103515245 + 12345) % 2147483648;
        int *node = find(state % 500);
        if (node != 0) {{
            found += node[1];
        }}
        lookups++;
    }}
    return found;
}}

void destroy() {{
    int h;
    for (h = 0; h < NBUCKETS; h++) {{
        int *node = table[h];
        while (node != 0) {{
            int *next = node[2];
            free(node);
            node = next;
        }}
    }}
    free(table);
}}

int main() {{
    table = malloc(NBUCKETS);
    build_dictionary();
    int doc;
    for (doc = 0; doc < {documents}; doc++) {{ // PARALLEL-WORDCOUNT-QUERY
        results[doc] = count_document(doc);
    }}
    int total = 0;
    for (doc = 0; doc < {documents}; doc++) {{
        total += results[doc];
    }}
    destroy();
    print(total, nwords, lookups);
    return 0;
}}
"""


def build(scale: float = 1.0) -> Workload:
    documents = max(4, round(8 * scale))
    words = max(60, round(120 * scale))
    queries = max(30, round(60 * scale))
    return Workload(
        name="wordcount",
        description=("wordcount: heap-chained hash dictionary (build: "
                     "serial; query loop: parallel with a shared counter)"),
        source=source(documents, words, queries),
        targets=[
            ParallelTarget(
                marker="PARALLEL-WORDCOUNT-QUERY", fn_name="main",
                paper_raw=-1, paper_waw=-1, paper_war=-1,
                private_vars=("lookups",),
            ),
            ParallelTarget(
                marker="SERIAL-WORDCOUNT-BUILD", fn_name="build_dictionary",
                paper_raw=-1, paper_waw=-1, paper_war=-1,
            ),
        ],
        expected_outputs=1,
    )
