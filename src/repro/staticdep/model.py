"""Verdict lattice and abstract memory locations of the static pass.

The static analyzer reasons about *abstract locations* — variable-granular
summaries of the interpreter's address space — and classifies potential
dependences into a three-point lattice:

``MUST_DEP``
    both end points access the same single memory word on every execution
    in which they run (a must-alias pair: a global scalar, or a local
    scalar / return cell of a non-recursive function);
``MAY_DEP``
    the end points' may-access sets overlap but are not provably one
    word (array elements, heap blocks, aliased pointers, recursive
    frames);
``PROVEN_INDEPENDENT``
    the may-access sets are disjoint — no execution can make the two
    end points touch the same address, so a full dynamic profile can
    never observe this edge (the soundness oracle in
    ``tests/staticdep/test_soundness.py`` enforces exactly this).

Soundness rests on two standard assumptions, documented in
``docs/static-analysis.md``: programs do not forge pointers from
integer literals (addresses only arise from ``&``, ``malloc`` and
array decay) and are memory-safe (pointer arithmetic stays within the
pointed-to object).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.profile_data import DepKind


class StaticVerdict(enum.Enum):
    """Static classification of one potential dependence."""

    MUST_DEP = "must"
    MAY_DEP = "may"
    PROVEN_INDEPENDENT = "independent"

    def order(self) -> int:
        """Severity order: independent < may < must."""
        return {"independent": 0, "may": 1, "must": 2}[self.value]


@dataclass(frozen=True)
class Loc:
    """One abstract memory location (variable-granular).

    ``kind`` is one of ``"global"``, ``"local"``, ``"ret"`` (a frame's
    return-value cell) or ``"heap"`` (one allocation site). Scalars are
    exact words; arrays, heap blocks and recursive-function locals are
    region-granular, so overlap on them is only ever a may-dependence.
    """

    kind: str
    fn: str
    name: str
    offset: int
    is_array: bool

    def label(self) -> str:
        """Human-readable name, matching the dynamic ``var_hint``
        naming where possible (``g``, ``fn.var``, ``retval(fn)``)."""
        if self.kind == "global":
            return self.name
        if self.kind == "local":
            return f"{self.fn}.{self.name}"
        if self.kind == "ret":
            return f"retval({self.fn})"
        return self.name  # heap@<pc>

    def must_word(self, recursive_fns: frozenset[str]) -> bool:
        """True when every dynamic access to this location hits the
        same single word: global scalars always; local scalars and
        return cells only outside recursion (each recursive activation
        owns a distinct frame)."""
        if self.is_array or self.kind == "heap":
            return False
        if self.kind == "global":
            return True
        return self.fn not in recursive_fns


@dataclass(frozen=True)
class StaticClass:
    """One (construct, variable, kind) dependence class.

    ``head_pcs``/``tail_pcs`` follow the dynamic edge orientation:
    writers→readers for RAW, readers→writers for WAR, writers→writers
    for WAW — so an observed :class:`~repro.core.profile_data.EdgeStats`
    key ``(head_pc, tail_pc, kind)`` falls in this class exactly when
    ``kind`` matches and ``head_pc in head_pcs``.
    """

    kind: DepKind
    var: str
    verdict: StaticVerdict
    induction: bool
    head_pcs: tuple[int, ...]
    tail_pcs: tuple[int, ...]
    #: Return-cell classes: the callee's ``Ret`` writes the word and the
    #: call site consumes it immediately, inside one construct instance —
    #: a real dependence, but never a loop-carried one, so construct
    #: verdicts and missed-by-sampling warnings skip these.
    call_local: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind.value,
            "var": self.var,
            "verdict": self.verdict.value,
            "induction": self.induction,
            "call_local": self.call_local,
            "head_pcs": list(self.head_pcs),
            "tail_pcs": list(self.tail_pcs),
        }
