"""Static dependence report: per-construct classes and edge classification.

For every construct in the :class:`~repro.analysis.constructs.ConstructTable`
the report computes the set of pcs that can execute *while an instance of
the construct is live* — the construct's region blocks (the whole
function, for procedures) plus the transitive bodies of every function
called from them — and groups the traced may-accesses inside that set
into per-variable dependence classes (RAW / WAR / WAW), each carrying a
:class:`~repro.staticdep.model.StaticVerdict`.

``classify_edge`` answers the dual question for one observed dynamic
edge: given the ``(head_pc, tail_pc, kind)`` key of an
:class:`~repro.core.profile_data.EdgeStats`, is the edge certain
(``MUST_DEP``: both end points are must-alias accesses to one word),
possible (``MAY_DEP``), or impossible (``PROVEN_INDEPENDENT``: the
may-access sets are disjoint, or the head pc cannot execute inside the
construct at all — which on a *sampled* trace exposes a shadow-memory
mis-pairing across a sampling gap)?
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

from repro.analysis.callgraph import recursive_functions
from repro.analysis.constructs import ConstructKind, ConstructTable, StaticConstruct
from repro.core.profile_data import DepKind
from repro.ir import instructions as ins
from repro.ir.cfg import ProgramIR

from repro.staticdep.model import Loc, StaticClass, StaticVerdict
from repro.staticdep.pointsto import EMPTY_LOCS, AccessModel

if TYPE_CHECKING:
    from repro.telemetry.spans import NullTelemetry, Telemetry

#: Ranking order for construct verdicts: best parallelization candidates
#: first.
_VERDICT_RANK = {"independent": 0, "may-dep": 1, "must-dep": 2}


class StaticDepReport:
    """The static pass's result for one program."""

    def __init__(self, program: ProgramIR) -> None:
        self.program = program
        self.table = ConstructTable(program)
        self.model = AccessModel(program)
        self.recursive: frozenset[str] = frozenset(recursive_functions(program))
        #: construct head pc -> pcs that may execute while an instance
        #: of the construct is live (region + transitive callee bodies).
        self.inside_pcs: dict[int, frozenset[int]] = {}
        #: construct head pc -> dependence classes, deterministic order.
        self.classes: dict[int, tuple[StaticClass, ...]] = {}
        self._fn_pcs: dict[str, tuple[int, ...]] = {
            fn.name: tuple(instr.pc for block in fn.blocks
                           for instr in block.instrs)
            for fn in program.functions.values()
        }
        for pc, construct in self.table.by_pc.items():
            inside = self._inside(construct)
            self.inside_pcs[pc] = inside
            self.classes[pc] = self._classes_of(construct, inside)

    # -- construction -------------------------------------------------

    def _inside(self, construct: StaticConstruct) -> frozenset[int]:
        fn = self.program.functions[construct.fn_name]
        if construct.kind is ConstructKind.PROCEDURE or construct.region is None:
            base = list(self._fn_pcs[fn.name])
        else:
            blocks = fn.block_map()
            base = [instr.pc for block_id in construct.region
                    for instr in blocks[block_id].instrs]
        pcs: set[int] = set(base)
        # Transitive closure over calls: callee bodies execute while the
        # construct instance is live, so their accesses belong to it.
        worklist = self._callees(base)
        seen: set[str] = set()
        while worklist:
            name = worklist.pop()
            if name in seen or name not in self.program.functions:
                continue
            seen.add(name)
            callee_pcs = self._fn_pcs[name]
            pcs.update(callee_pcs)
            worklist.extend(self._callees(callee_pcs))
        return frozenset(pcs)

    def _callees(self, pcs: "list[int] | tuple[int, ...]") -> list[str]:
        names: list[str] = []
        for pc in pcs:
            instr = self.program.instr_at(pc)
            if isinstance(instr, ins.Call):
                names.append(instr.name)
        return names

    def _classes_of(self, construct: StaticConstruct,
                    inside: frozenset[int]) -> tuple[StaticClass, ...]:
        readers: dict[Loc, list[int]] = {}
        writers: dict[Loc, list[int]] = {}
        for pc in sorted(inside):
            for loc in self.model.reads.get(pc, EMPTY_LOCS):
                readers.setdefault(loc, []).append(pc)
            for loc in self.model.writes.get(pc, EMPTY_LOCS):
                writers.setdefault(loc, []).append(pc)

        out: list[StaticClass] = []
        for loc in sorted(writers, key=Loc.label):
            w = tuple(writers[loc])
            r = tuple(readers.get(loc, ()))
            induction = (loc.kind == "local" and not loc.is_array
                         and loc.label() in construct.induction_vars)
            call_local = loc.kind == "ret"
            if r:
                out.append(StaticClass(DepKind.RAW, loc.label(),
                                       self._class_verdict(loc, w, r),
                                       induction, w, r, call_local))
                out.append(StaticClass(DepKind.WAR, loc.label(),
                                       self._class_verdict(loc, r, w),
                                       induction, r, w, call_local))
            out.append(StaticClass(DepKind.WAW, loc.label(),
                                   self._class_verdict(loc, w, w),
                                   induction, w, w, call_local))
        out.sort(key=lambda c: (c.var, c.kind.value))
        return tuple(out)

    def _class_verdict(self, loc: Loc, head_pcs: tuple[int, ...],
                       tail_pcs: tuple[int, ...]) -> StaticVerdict:
        """MUST iff the class provably conflicts on one word: the
        location is a must-word and some head/tail access pair resolves
        to exactly it (singleton may-sets). Otherwise MAY — the class
        exists because the sets overlap, but aliasing or region
        granularity keeps it uncertain."""
        if loc.must_word(self.recursive):
            heads = any(self._access_of(pc, loc) == {loc} for pc in head_pcs)
            tails = any(self._access_of(pc, loc) == {loc} for pc in tail_pcs)
            if heads and tails:
                return StaticVerdict.MUST_DEP
        return StaticVerdict.MAY_DEP

    def _access_of(self, pc: int, loc: Loc) -> frozenset[Loc]:
        """The may-access set (read or write) at ``pc`` containing ``loc``."""
        w = self.model.writes.get(pc, EMPTY_LOCS)
        if loc in w:
            return w
        return self.model.reads.get(pc, EMPTY_LOCS)

    # -- edge classification ------------------------------------------

    def classify_edge(self, construct_pc: int, head_pc: int, tail_pc: int,
                      kind: DepKind) -> StaticVerdict:
        """Classify one dynamic edge key against the static model."""
        inside = self.inside_pcs.get(construct_pc)
        if inside is not None and head_pc not in inside:
            # The head access cannot happen while an instance of this
            # construct is live: a sampling-gap mis-pairing.
            return StaticVerdict.PROVEN_INDEPENDENT
        if kind is DepKind.RAW:
            head = self.model.writes_at(head_pc)
            tail = self.model.reads_at(tail_pc)
        elif kind is DepKind.WAR:
            head = self.model.reads_at(head_pc)
            tail = self.model.writes_at(tail_pc)
        else:
            head = self.model.writes_at(head_pc)
            tail = self.model.writes_at(tail_pc)
        overlap = head & tail
        if not overlap:
            return StaticVerdict.PROVEN_INDEPENDENT
        if len(head) == 1 and head == tail:
            loc = next(iter(head))
            if loc.must_word(self.recursive):
                return StaticVerdict.MUST_DEP
        return StaticVerdict.MAY_DEP

    # -- construct-level queries --------------------------------------

    def raw_classes(self, construct_pc: int) -> tuple[StaticClass, ...]:
        """Non-induction, non-call-local RAW classes of a construct (the
        loop-carried flow dependences the static pass cannot rule out)."""
        return tuple(c for c in self.classes.get(construct_pc, ())
                     if c.kind is DepKind.RAW and not c.induction
                     and not c.call_local)

    def construct_verdict(self, construct_pc: int) -> str:
        """``independent`` / ``may-dep`` / ``must-dep`` from the
        construct's non-induction RAW classes."""
        raw = self.raw_classes(construct_pc)
        if any(c.verdict is StaticVerdict.MUST_DEP for c in raw):
            return "must-dep"
        if raw:
            return "may-dep"
        return "independent"

    # -- screening ----------------------------------------------------

    def screen_rows(self) -> list[dict[str, object]]:
        """All constructs ranked best-candidate-first: statically
        independent before may-dep before must-dep, bigger regions
        first within a tier."""
        rows: list[dict[str, object]] = []
        for pc in sorted(self.table.by_pc):
            construct = self.table.by_pc[pc]
            verdict = self.construct_verdict(pc)
            raw = self.raw_classes(pc)
            rows.append({
                "pc": pc,
                "name": construct.name,
                "kind": construct.kind.value,
                "fn": construct.fn_name,
                "line": construct.line,
                "verdict": verdict,
                "weight": len(self.inside_pcs[pc]),
                "must_raw": sorted(c.var for c in raw
                                   if c.verdict is StaticVerdict.MUST_DEP),
                "may_raw": sorted(c.var for c in raw
                                  if c.verdict is StaticVerdict.MAY_DEP),
            })
        rows.sort(key=lambda r: (_VERDICT_RANK[str(r["verdict"])],
                                 -int(str(r["weight"])), int(str(r["pc"]))))
        return rows

    def to_dict(self) -> dict[str, object]:
        """JSON-stable summary (no filesystem paths, sorted keys)."""
        rows = self.screen_rows()
        tally = {"independent": 0, "may-dep": 0, "must-dep": 0}
        for row in rows:
            tally[str(row["verdict"])] += 1
        return {
            "static_constructs": self.table.static_count(),
            "verdicts": tally,
            "rows": rows,
        }


def analyze_program(program: ProgramIR,
                    telemetry: "Telemetry | NullTelemetry | None" = None,
                    ) -> StaticDepReport:
    """Run the static pass under a ``static.analyze`` telemetry span."""
    from repro.telemetry import as_telemetry
    tm = as_telemetry(telemetry)
    with tm.span("static.analyze",
                 functions=len(program.functions)) as span:
        report = StaticDepReport(program)
        span.set(constructs=report.table.static_count())
    return report


_CACHE: "weakref.WeakKeyDictionary[ProgramIR, StaticDepReport]" = \
    weakref.WeakKeyDictionary()


def report_for(program: ProgramIR,
               telemetry: "Telemetry | NullTelemetry | None" = None,
               ) -> StaticDepReport:
    """Memoized :func:`analyze_program`, keyed by program identity —
    every analysis pass over the same compiled program shares one
    static report."""
    report = _CACHE.get(program)
    if report is None:
        report = analyze_program(program, telemetry)
        _CACHE[program] = report
    return report
