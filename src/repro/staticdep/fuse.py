"""Fusing the static pass into dynamic dependence results.

Called from the ``dep`` analysis's result builder (serial finish and
parallel ``finalize_segments`` alike, so live, replay and parallel modes
stay byte-identical). Two jobs:

* classify every observed dynamic edge against the static model. On a
  **full** trace a ``PROVEN_INDEPENDENT`` classification is a
  *contradiction* — the soundness oracle asserts there are none. On a
  **sampled** trace the same classification *upgrades* the edge from
  hint to verdict: the edge is a shadow-memory mis-pairing across a
  sampling gap, not a real dependence. A ``MUST_DEP`` classification
  upgrades the hint in the other direction — the dependence is certain
  even though sampling only glimpsed it.
* report what sampling never saw: statically possible (MAY/MUST)
  dependence classes of an executed construct with no observed edge are
  emitted as ``missed-by-sampling`` warnings instead of being silently
  absent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.profile_data import DepKind
from repro.core.report import ProfileReport

from repro.staticdep.model import StaticClass, StaticVerdict
from repro.staticdep.report import StaticDepReport, report_for

if TYPE_CHECKING:
    from repro.telemetry.spans import NullTelemetry, Telemetry

#: Cap on rendered missed-by-sampling warning lines (the JSON payload
#: always carries the full list).
_MAX_WARN_LINES = 8


def _edge_key(head_pc: int, tail_pc: int, kind: DepKind) -> str:
    return f"{head_pc}->{tail_pc}:{kind.value}"


def _missed_classes(profile_edges: set[tuple[int, int, DepKind]],
                    classes: tuple[StaticClass, ...]) -> list[StaticClass]:
    """Static classes (non-induction, dependence-possible) with no
    observed edge: kind matches and the observed head pc falls in the
    class's head set."""
    missed: list[StaticClass] = []
    for cls in classes:
        if cls.induction or cls.call_local:
            continue
        covered = any(kind is cls.kind and head in cls.head_pcs
                      for head, _tail, kind in profile_edges)
        if not covered:
            missed.append(cls)
    return missed


def fuse_profile(report: ProfileReport, static: StaticDepReport,
                 sampling: str | None,
                 telemetry: "Telemetry | NullTelemetry | None" = None,
                 ) -> tuple[dict[str, object], list[str]]:
    """Classify a profile's edges statically; returns the ``static``
    payload for the analysis result plus rendered text lines."""
    from repro.telemetry import as_telemetry
    tm = as_telemetry(telemetry)
    with tm.span("static.fuse", sampled=bool(sampling)) as span:
        payload, lines = _fuse(report, static, sampling)
        span.set(edges=payload["edges_checked"],
                 contradictions=payload["contradictions"],
                 upgraded=payload["upgraded_hints"])
    return payload, lines


def _fuse(report: ProfileReport, static: StaticDepReport,
          sampling: str | None) -> tuple[dict[str, object], list[str]]:
    sampled = sampling is not None
    constructs: dict[str, dict[str, object]] = {}
    checked = confirmed = possible = refuted = 0
    missed_total = 0
    warn_lines: list[str] = []

    for view in report.constructs():
        edges: dict[str, str] = {}
        entry_missed: list[dict[str, str]] = []
        for (head, tail, kind), _stats in sorted(
                view.profile.edges.items(),
                key=lambda item: (item[0][0], item[0][1], item[0][2].value)):
            verdict = static.classify_edge(view.pc, head, tail, kind)
            edges[_edge_key(head, tail, kind)] = verdict.value
            checked += 1
            if verdict is StaticVerdict.MUST_DEP:
                confirmed += 1
            elif verdict is StaticVerdict.MAY_DEP:
                possible += 1
            else:
                refuted += 1
        if sampled:
            observed = set(view.profile.edges)
            for cls in _missed_classes(observed,
                                       static.classes.get(view.pc, ())):
                entry_missed.append({
                    "kind": cls.kind.value,
                    "var": cls.var,
                    "verdict": cls.verdict.value,
                })
                missed_total += 1
                if len(warn_lines) < _MAX_WARN_LINES:
                    warn_lines.append(
                        f"  missed-by-sampling: {view.name} "
                        f"{cls.kind.value} on {cls.var} "
                        f"({cls.verdict.value})")
        if edges or entry_missed:
            entry: dict[str, object] = {"edges": edges}
            if sampled:
                entry["missed_by_sampling"] = entry_missed
            constructs[str(view.pc)] = entry

    upgraded = (confirmed + refuted) if sampled else 0
    contradictions = 0 if sampled else refuted
    payload: dict[str, object] = {
        "mode": "sampled" if sampled else "full",
        "edges_checked": checked,
        "confirmed_must": confirmed,
        "possible_may": possible,
        "upgraded_hints": upgraded,
        "contradictions": contradictions,
        "missed_by_sampling": missed_total,
        "constructs": constructs,
    }

    lines: list[str] = []
    if sampled:
        lines.append(
            f"Static fusion: upgraded {upgraded} sampled hint(s) to "
            f"verdicts ({confirmed} confirmed MUST_DEP, {refuted} proven "
            f"spurious); {missed_total} statically-possible class(es) "
            f"missed by sampling.")
        lines.extend(warn_lines)
        if missed_total > len(warn_lines):
            lines.append(f"  ... and {missed_total - len(warn_lines)} more")
    else:
        lines.append(
            f"Static fusion: {checked} edge(s) checked against the static "
            f"pass; {confirmed} confirmed MUST_DEP, {possible} MAY_DEP, "
            f"{contradictions} contradiction(s).")
    return payload, lines


__all__ = ["fuse_profile", "report_for"]
