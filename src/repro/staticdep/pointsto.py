"""Flow-insensitive points-to analysis and per-pc may-access sets.

An Andersen-style inclusion fixpoint over the whole :class:`ProgramIR`:
three tables grow monotonically until stable —

``reg``
    abstract locations a virtual register may point to, per
    ``(function, register)``;
``contents``
    pointer values that may be *stored in* an abstract location (a
    pointer scalar, an array cell, a heap word);
``refs``
    arrays a ``RefSlot`` (array parameter) may be bound to, per
    ``(function, ref_index)``.

After the fixpoint, every instruction that the tracer records as a
memory event gets a may-access set mirroring the tracer exactly:
``Load``/``Store`` access their resolved slot, ``LoadInd``/``StoreInd``
access whatever their address register may point to, a value-returning
``Call`` reads the callee's return cell (the tracer attributes that read
to the call pc), and a value-carrying ``Ret`` writes its own return
cell. Scalar argument passing is untraced and therefore carries no
access set — but its data flow still feeds ``contents`` so that pointers
passed by value keep their targets.
"""

from __future__ import annotations

from collections import defaultdict

from repro.ir import instructions as ins
from repro.ir.cfg import ProgramIR

from repro.staticdep.model import Loc

EMPTY_LOCS: frozenset[Loc] = frozenset()


def _slot_loc(slot: ins.GlobalSlot | ins.LocalSlot, fn_name: str) -> Loc:
    if isinstance(slot, ins.GlobalSlot):
        return Loc("global", "", slot.name, slot.offset, slot.is_array)
    return Loc("local", fn_name, slot.name, slot.offset, slot.is_array)


def _ret_loc(fn_name: str) -> Loc:
    return Loc("ret", fn_name, "retval", 0, False)


class AccessModel:
    """Points-to facts and per-pc may-access sets for one program."""

    def __init__(self, program: ProgramIR) -> None:
        self.program = program
        self.reg: dict[tuple[str, int], set[Loc]] = defaultdict(set)
        self.contents: dict[Loc, set[Loc]] = defaultdict(set)
        self.refs: dict[tuple[str, int], set[Loc]] = defaultdict(set)
        #: traced may-read set per pc (absent pc: no traced read)
        self.reads: dict[int, frozenset[Loc]] = {}
        #: traced may-write set per pc (absent pc: no traced write)
        self.writes: dict[int, frozenset[Loc]] = {}
        self._solve()
        self._collect_accesses()

    # -- fixpoint -----------------------------------------------------

    def _resolve(self, slot: ins.Slot, fn_name: str) -> set[Loc]:
        """Locations a slot operand may denote (RefSlots follow the
        current binding set, which is part of the fixpoint)."""
        if isinstance(slot, ins.RefSlot):
            return self.refs[(fn_name, slot.ref_index)]
        return {_slot_loc(slot, fn_name)}

    def _solve(self) -> None:
        program = self.program
        changed = True
        while changed:
            changed = False
            for instr in program.instrs:
                changed |= self._apply(instr)

    def _flow(self, dst: set[Loc], src: set[Loc]) -> bool:
        if src <= dst:
            return False
        dst |= src
        return True

    def _apply(self, instr: ins.Instr) -> bool:
        fn = instr.fn_name
        reg, contents, refs = self.reg, self.contents, self.refs
        if isinstance(instr, ins.Move):
            return self._flow(reg[(fn, instr.dst)], reg[(fn, instr.src)])
        if isinstance(instr, ins.UnOp):
            return self._flow(reg[(fn, instr.dst)], reg[(fn, instr.src)])
        if isinstance(instr, ins.BinOp):
            # Pointer arithmetic stays within the pointed-to object
            # (memory-safety assumption), so propagating from both
            # operands keeps region-granular targets.
            dst = reg[(fn, instr.dst)]
            changed = self._flow(dst, reg[(fn, instr.lhs)])
            changed |= self._flow(dst, reg[(fn, instr.rhs)])
            return changed
        if isinstance(instr, ins.Load):
            dst = reg[(fn, instr.dst)]
            changed = False
            for loc in self._resolve(instr.slot, fn):
                changed |= self._flow(dst, contents[loc])
            return changed
        if isinstance(instr, ins.Store):
            src = reg[(fn, instr.src)]
            changed = False
            for loc in self._resolve(instr.slot, fn):
                changed |= self._flow(contents[loc], src)
            return changed
        if isinstance(instr, ins.AddrOf):
            return self._flow(reg[(fn, instr.dst)],
                              self._resolve(instr.slot, fn))
        if isinstance(instr, ins.LoadInd):
            dst = reg[(fn, instr.dst)]
            changed = False
            for loc in set(reg[(fn, instr.addr)]):
                changed |= self._flow(dst, contents[loc])
            return changed
        if isinstance(instr, ins.StoreInd):
            src = reg[(fn, instr.src)]
            changed = False
            for loc in set(reg[(fn, instr.addr)]):
                changed |= self._flow(contents[loc], src)
            return changed
        if isinstance(instr, ins.Alloc):
            heap = Loc("heap", "", f"heap@{instr.pc}", instr.pc, True)
            return self._flow(reg[(fn, instr.dst)], {heap})
        if isinstance(instr, ins.Call):
            callee = self.program.functions.get(instr.name)
            if callee is None:
                return False
            changed = False
            for arg_reg, param in zip(instr.args, callee.params):
                if isinstance(param.slot, ins.RefSlot):
                    changed |= self._flow(
                        refs[(callee.name, param.slot.ref_index)],
                        reg[(fn, arg_reg)])
                elif isinstance(param.slot, ins.LocalSlot):
                    changed |= self._flow(
                        contents[_slot_loc(param.slot, callee.name)],
                        reg[(fn, arg_reg)])
            if instr.dst is not None:
                changed |= self._flow(reg[(fn, instr.dst)],
                                      contents[_ret_loc(callee.name)])
            return changed
        if isinstance(instr, ins.Ret) and instr.src is not None:
            return self._flow(contents[_ret_loc(fn)], reg[(fn, instr.src)])
        return False

    # -- traced access sets -------------------------------------------

    def _collect_accesses(self) -> None:
        for instr in self.program.instrs:
            fn = instr.fn_name
            if isinstance(instr, ins.Load):
                self.reads[instr.pc] = frozenset(self._resolve(instr.slot, fn))
            elif isinstance(instr, ins.Store):
                self.writes[instr.pc] = frozenset(self._resolve(instr.slot, fn))
            elif isinstance(instr, ins.LoadInd):
                self.reads[instr.pc] = frozenset(self.reg[(fn, instr.addr)])
            elif isinstance(instr, ins.StoreInd):
                self.writes[instr.pc] = frozenset(self.reg[(fn, instr.addr)])
            elif isinstance(instr, ins.Call) and instr.dst is not None:
                if instr.name in self.program.functions:
                    self.reads[instr.pc] = frozenset({_ret_loc(instr.name)})
            elif isinstance(instr, ins.Ret) and instr.src is not None:
                self.writes[instr.pc] = frozenset({_ret_loc(fn)})

    def reads_at(self, pc: int) -> frozenset[Loc]:
        return self.reads.get(pc, EMPTY_LOCS)

    def writes_at(self, pc: int) -> frozenset[Loc]:
        return self.writes.get(pc, EMPTY_LOCS)
