"""Static dependence analysis over the MiniC IR (zero execution).

Public surface:

* :class:`StaticDepReport` — per-construct dependence classes with
  MUST_DEP / MAY_DEP / PROVEN_INDEPENDENT verdicts, plus
  ``classify_edge`` for dynamic :class:`~repro.core.profile_data.EdgeStats`
  keys;
* :func:`analyze_program` / :func:`report_for` — run (or memoize) the
  pass for a compiled :class:`~repro.ir.cfg.ProgramIR`;
* :func:`fuse_profile` — fold static verdicts into a dynamic dep
  result (hint upgrades, missed-by-sampling warnings);
* the model types: :class:`StaticVerdict`, :class:`Loc`,
  :class:`StaticClass`.
"""

from repro.staticdep.fuse import fuse_profile
from repro.staticdep.model import Loc, StaticClass, StaticVerdict
from repro.staticdep.pointsto import AccessModel
from repro.staticdep.report import StaticDepReport, analyze_program, report_for

__all__ = [
    "AccessModel",
    "Loc",
    "StaticClass",
    "StaticDepReport",
    "StaticVerdict",
    "analyze_program",
    "fuse_profile",
    "report_for",
]
