"""The unified entry point: one ``Session``, every analysis, any mode.

Historically the repo had three incompatible front doors —
``Alchemist.profile()`` for live dependence profiling, ``ReplayEngine``
for traces, and free functions for the baseline profilers. A
:class:`Session` replaces all of them with one call::

    from repro.api import Session

    with Session() as session:
        report = session.analyze(source, ["dep", "locality", "hot"])
        print(report.to_text())
        print(report["dep"].payload.top_constructs(5))

``analyze`` resolves analyses through the shared plugin registry
(:mod:`repro.analyses`), records the program **at most once** per
source digest (compiled IR and recorded traces are both cached on the
session), and fans the trace out to every requested analysis in a
single replay pass. Only analyses that declare ``requires_live`` — or
an explicit ``mode="live"`` — execute the program, and even then one
interpreter run feeds all of them through a
:class:`~repro.runtime.tracing.TeeTracer`.
"""

from __future__ import annotations

import os
import tempfile
import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:
    from repro.staticdep.report import StaticDepReport

from repro.analyses import (Analysis, AnalysisContext, AnalysisError,
                            AnalysisResult, make_analyses, parse_spec)
from repro.core.alchemist import ProfileOptions
from repro.ir.cfg import ProgramIR
from repro.ir.lowering import compile_source
from repro.runtime.interpreter import Interpreter
from repro.runtime.tracing import TeeTracer
from repro.trace.events import source_digest

#: analyze() run modes.
MODES = ("auto", "live", "replay")


@dataclass
class SessionStats:
    """Cache behaviour of one session (observability + tests)."""

    compiles: int = 0
    compile_hits: int = 0
    records: int = 0
    record_hits: int = 0
    live_runs: int = 0
    replay_passes: int = 0
    #: Replay passes that ran as sharded parallel replays (a subset of
    #: ``replay_passes``).
    parallel_passes: int = 0


@dataclass
class SessionReport:
    """Everything one :meth:`Session.analyze` call produced."""

    filename: str
    digest: str
    results: dict[str, AnalysisResult]
    modes: dict[str, str]
    trace_path: str | None
    wall_seconds: float

    def __getitem__(self, name: str) -> AnalysisResult:
        return self.results[name]

    def __iter__(self):
        return iter(self.results.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "file": self.filename,
            "digest": self.digest,
            "mode": dict(self.modes),
            "analyses": {name: result.to_dict()
                         for name, result in self.results.items()},
        }

    def to_json(self, indent: int | None = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        parts = []
        for name, result in self.results.items():
            parts.append(f"== {name} ({self.modes[name]}) ==")
            parts.append(result.text)
        return "\n".join(parts)


class Session:
    """Owns compiled-IR and recorded-trace caches keyed by source digest.

    Reusable across programs and across ``analyze`` calls; asking new
    questions about an already-seen source costs one replay pass, never
    a re-execution. Traces live in ``cache_dir`` (a private temporary
    directory by default, removed on :meth:`close` / context exit).
    """

    def __init__(self, options: ProfileOptions | None = None,
                 cache_dir: str | os.PathLike | None = None,
                 telemetry=None):
        from repro.telemetry import as_telemetry

        self.options = options if options is not None else ProfileOptions()
        self.stats = SessionStats()
        #: Observability handle threaded through every stage this
        #: session drives (``repro.telemetry``); disabled by default.
        self.telemetry = as_telemetry(telemetry)
        # Programs are keyed by (digest, filename): same content under a
        # new name recompiles so reports attribute to the right file.
        # Traces are keyed by (digest, sampling spec, format version) —
        # the event stream does not depend on the filename, so one
        # recording serves every alias, but a sampled recording answers
        # different questions than a full one and must never shadow it.
        self._programs: dict[tuple[str, str], ProgramIR] = {}
        self._traces: dict[tuple[str, str, int], str] = {}
        # Static dependence reports are execution-free, so they key on
        # the IR digest alone — any filename alias shares one report.
        self._static: dict[str, "StaticDepReport"] = {}
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._cache_dir = os.fspath(cache_dir) if cache_dir else None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drop caches; remove the private trace directory if we made it."""
        self._programs.clear()
        self._traces.clear()
        self._static.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _trace_dir(self) -> str:
        if self._cache_dir is not None:
            os.makedirs(self._cache_dir, exist_ok=True)
            return self._cache_dir
        if self._tmpdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(
                prefix="alchemist-session-")
        return self._tmpdir.name

    # -- cached primitives --------------------------------------------------

    def compile(self, source: str, filename: str = "<input>") -> ProgramIR:
        """Compile MiniC source to IR, cached by (digest, filename)."""
        key = (source_digest(source), filename)
        cached = self._programs.get(key)
        if cached is not None:
            self.stats.compile_hits += 1
            self.telemetry.count("session.compile_cache_hits")
            return cached
        self.telemetry.count("session.compile_cache_misses")
        with self.telemetry.span("compile", file=filename):
            program = compile_source(source, filename)
        self._programs[key] = program
        self.stats.compiles += 1
        return program

    def static_report(self, source: str,
                      filename: str = "<input>") -> "StaticDepReport":
        """The static dependence report for a program — zero execution,
        no trace; cached by source digest (``alchemist screen``)."""
        from repro.staticdep import analyze_program

        digest = source_digest(source)
        cached = self._static.get(digest)
        if cached is not None:
            self.telemetry.count("session.static_cache_hits")
            return cached
        program = self.compile(source, filename)
        report = analyze_program(program, self.telemetry)
        self._static[digest] = report
        return report

    def _trace_key(self, digest: str) -> tuple[str, str, int]:
        """Cache key of a recording under the session's options: one
        slot per (program, sampling policy, trace format)."""
        return (digest, self.options.sample or "full",
                self.options.trace_format)

    def record(self, source: str, filename: str = "<input>") -> str:
        """Record one execution into the trace cache; returns the path.

        Repeated calls for the same source (any filename) under the
        same sampling/format configuration return the cached trace
        without re-running the program; changing ``options.sample`` or
        ``options.trace_format`` records a distinct trace.
        """
        from repro.trace.writer import record_program

        digest = source_digest(source)
        key = self._trace_key(digest)
        cached = self._traces.get(key)
        if cached is not None:
            self.stats.record_hits += 1
            self.telemetry.count("session.trace_cache_hits")
            return cached
        self.telemetry.count("session.trace_cache_misses")
        program = self.compile(source, filename)
        path = os.path.join(self._trace_dir(), self._trace_name(key))
        record_program(program, path, source=source, filename=filename,
                       max_steps=self.options.max_steps,
                       version=self.options.trace_format,
                       sampling=self.options.sample,
                       checkpoint_interval=self.options.checkpoints,
                       telemetry=self.telemetry)
        self._traces[key] = path
        self.stats.records += 1
        return path

    @staticmethod
    def _trace_name(key: tuple[str, str, int]) -> str:
        digest, spec, version = key
        safe_spec = spec.replace(":", "-").replace("/", "-") \
                        .replace("@", "-")
        return f"{digest[:16]}-{safe_spec}-v{version}.trace"

    # -- the one entry point ------------------------------------------------

    def analyze(self, source: str,
                analyses: str | Iterable[str] = ("dep",), *,
                filename: str = "<input>",
                mode: str = "auto",
                options: Mapping[str, Mapping[str, Any]] | None = None
                ) -> SessionReport:
        """Run the named analyses over ``source`` and return all results.

        ``mode="auto"`` (default) records at most once and replays,
        running live only the analyses that demand it; ``mode="live"``
        executes the program instead (one interpreter run feeds every
        analysis); ``mode="replay"`` errors if any analysis demands a
        live run — note the source is still *recorded* once (one
        execution) if this session has no cached trace for it yet.
        Per-analysis options ride in ``options``, e.g.
        ``{"hot": {"top": 5}}``.
        """
        if mode not in MODES:
            raise AnalysisError(
                f"unknown mode {mode!r} (known: {', '.join(MODES)})")
        requested = parse_spec(analyses)
        stray = sorted(set(options or {}) - set(requested))
        if stray:
            # A typo'd options key would otherwise be dropped silently
            # and the defaults applied.
            raise AnalysisError(
                "options given for analyses that were not requested: "
                + ", ".join(stray))
        merged = self._merge_options(options)
        instances = make_analyses(requested, merged)

        with self.telemetry.span("analyze", file=filename,
                                 analyses=list(requested),
                                 mode=mode) as span:
            live: list[Analysis] = []
            replayed: list[Analysis] = []
            for analysis in instances:
                if mode == "live" or analysis.requires_live:
                    live.append(analysis)
                else:
                    replayed.append(analysis)
            if mode == "replay" and live:
                names = ", ".join(a.name for a in live)
                raise AnalysisError(
                    f"analysis requires live execution: {names} "
                    "(mode='replay' forbids attaching analyses to a live "
                    "run)")

            results: dict[str, AnalysisResult] = {}
            modes: dict[str, str] = {}
            trace_path: str | None = None
            live_ctx: AnalysisContext | None = None
            if replayed:
                program = self.compile(source, filename)
                if live and self._trace_key(source_digest(source)) \
                        not in self._traces:
                    # Mixed request on a cold cache: one execution both
                    # records the trace and feeds the live analyses (the
                    # writer is just another tracer on the tee).
                    trace_path, live_ctx = self._record_and_run_live(
                        source, filename, live)
                else:
                    trace_path = self.record(source, filename)
                reports, replay_mode = self._replay(trace_path, program,
                                                    replayed, merged)
                for analysis in replayed:
                    results[analysis.name] = reports[analysis.name]
                    modes[analysis.name] = replay_mode
            if live:
                if live_ctx is None:
                    live_ctx = self._run_live(source, filename, live)
                for analysis in live:
                    with self.telemetry.span("analysis.finish",
                                             analysis=analysis.name):
                        report = analysis.finish(live_ctx)
                    analysis.last_result = report
                    results[analysis.name] = report
                    modes[analysis.name] = "live"
                self._attach_baseline(results, live)

        # Report results in request order, not execution order.
        ordered = {a.name: results[a.name] for a in instances}
        return SessionReport(
            filename=filename,
            digest=source_digest(source),
            results=ordered,
            modes={name: modes[name] for name in ordered},
            trace_path=trace_path,
            wall_seconds=span.wall_seconds,
        )

    def advise(self, source: str, *, filename: str = "<input>",
               workers: Iterable[int] | str | None = None,
               top: int | None = None, jobs: int | None = None,
               mode: str = "auto") -> AnalysisResult:
        """The what-if advisor over one program: record once, replay,
        rank candidate constructs by predicted futures speedup.

        Thin sugar over ``analyze(source, ["whatif"], ...)`` — the
        trace cache, sampling and format options all apply, and the
        returned :class:`~repro.analyses.AnalysisResult` carries the
        ranked sweep in ``data`` plus the full ``ProfileReport`` as
        ``payload``.
        """
        options: dict[str, Any] = {}
        if workers is not None:
            if not isinstance(workers, str):
                workers = ",".join(str(w) for w in workers)
            options["workers"] = workers
        if top is not None:
            options["top"] = top
        if jobs is not None:
            options["jobs"] = jobs
        report = self.analyze(source, ("whatif",), filename=filename,
                              mode=mode,
                              options={"whatif": options} if options
                              else None)
        return report["whatif"]

    # -- internals ----------------------------------------------------------

    def _replay(self, trace_path: str, program: ProgramIR,
                replayed: list[Analysis],
                merged_options: Mapping) -> tuple[dict, str]:
        """One replay pass over every replayed analysis.

        With ``options.jobs`` set (and every requested analysis
        implementing the segment protocol), the pass runs as a sharded
        parallel replay — results are identical to serial, so callers
        only see the mode label and the wall clock change.
        """
        jobs = self.options.jobs
        self.stats.replay_passes += 1
        if jobs is not None and jobs != 1:
            from repro.trace.parallel import (parallel_replay,
                                              unsupported_analyses)

            names = [analysis.name for analysis in replayed]
            if not unsupported_analyses(names):
                outcome = parallel_replay(
                    trace_path, names, jobs=jobs,
                    options={name: dict(merged_options.get(name, {}))
                             for name in names},
                    telemetry=self.telemetry)
                # The driver ran its own instances (workers, or the
                # serial fallback); stash results on the session's so
                # the deprecated describe() surface works either way.
                for analysis in replayed:
                    analysis.last_result = outcome.reports[analysis.name]
                if outcome.mode == "parallel":
                    self.stats.parallel_passes += 1
                    return outcome.reports, "parallel"
                return outcome.reports, "replay"
        from repro.trace.replay import replay_with

        outcome = replay_with(trace_path, replayed, program,
                              telemetry=self.telemetry)
        return outcome.reports, "replay"

    def _merge_options(self, options: Mapping | None
                       ) -> dict[str, dict[str, Any]]:
        """Session-level ProfileOptions become 'dep' defaults; explicit
        per-analysis options win."""
        merged: dict[str, dict[str, Any]] = {
            "dep": {"pool_size": self.options.pool_size,
                    "track_war_waw": self.options.track_war_waw},
        }
        for name, opts in (options or {}).items():
            merged.setdefault(name, {}).update(opts)
        return merged

    def _run_live(self, source: str, filename: str,
                  analyses: list[Analysis],
                  recorder=None) -> AnalysisContext:
        """One interpreter run feeding every live analysis (and, when
        ``recorder`` is given, the trace writer too)."""
        program = self.compile(source, filename)
        tracers = ([recorder] if recorder is not None else []) + analyses
        tee = TeeTracer(tracers)
        interp = Interpreter(program, tee, self.options.max_steps)
        with self.telemetry.span(
                "live", file=filename,
                analyses=[a.name for a in analyses],
                recording=recorder is not None) as span:
            try:
                exit_value = interp.run()
            except BaseException:
                if recorder is not None:
                    recorder.abort()
                raise
        wall = span.wall_seconds
        if recorder is not None:
            recorder.close(exit_value, interp.output)
        self.stats.live_runs += 1
        return AnalysisContext(
            program=program,
            memory=interp.memory,
            final_time=interp.time,
            exit_value=exit_value,
            output=[tuple(v) for v in interp.output],
            events=None,
            wall_seconds=wall,
            mode="live",
            telemetry=self.telemetry,
        )

    def _record_and_run_live(self, source: str, filename: str,
                             analyses: list[Analysis]
                             ) -> tuple[str, AnalysisContext]:
        """Record the trace and feed the live analyses in ONE run.

        The sampling gate wraps only the writer: live analyses on the
        same tee observe the complete event stream regardless of what
        the recording keeps.
        """
        from repro.sampling.policies import as_policy
        from repro.sampling.tracer import SampledTracer
        from repro.trace.writer import TraceWriter

        key = self._trace_key(source_digest(source))
        path = os.path.join(self._trace_dir(), self._trace_name(key))
        policy = as_policy(self.options.sample)
        writer = TraceWriter(path, source, filename,
                             version=self.options.trace_format,
                             sampling=policy.spec,
                             checkpoint_interval=self.options.checkpoints)
        recorder = (writer if policy.is_full
                    else SampledTracer(policy, writer,
                                       telemetry=self.telemetry))
        ctx = self._run_live(source, filename, analyses,
                             recorder=recorder)
        tm = self.telemetry
        if tm.enabled:
            tm.count("session.trace_cache_misses")
            tm.count("trace.events_written", writer.events)
            tm.count("trace.bytes_written", os.path.getsize(writer.path))
            tm.count("trace.checkpoint_seams_written",
                     len(writer._checkpoints))
            if not policy.is_full:
                tm.count("sampling.memory_events_kept", recorder.kept)
                tm.count("sampling.memory_events_dropped",
                         recorder.dropped)
        self._traces[key] = path
        self.stats.records += 1
        return path, ctx

    def _attach_baseline(self, results: dict[str, AnalysisResult],
                         live: list[Analysis]) -> None:
        """Honour ``ProfileOptions.measure_baseline`` for a live `dep`
        run, matching ``Alchemist.profile`` (Table III's Orig. column).
        The timing stays out of ``AnalysisResult.data`` by design."""
        if not self.options.measure_baseline:
            return
        for analysis in live:
            if analysis.name != "dep":
                continue
            report = results["dep"].payload
            from repro.runtime.tracing import NullTracer

            interp = Interpreter(report.program, NullTracer(),
                                 self.options.max_steps)
            start = _time.perf_counter()
            interp.run()
            report.stats.baseline_seconds = (_time.perf_counter()
                                             - start)


def analyze(source: str, analyses: str | Iterable[str] = ("dep",),
            **kwargs) -> SessionReport:
    """One-shot convenience: ``Session().analyze(...)`` with cleanup."""
    with Session() as session:
        report = session.analyze(source, analyses, **kwargs)
    # The session-owned trace directory is gone; don't hand out a
    # dangling path.
    report.trace_path = None
    return report
