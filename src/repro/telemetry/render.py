"""Pretty-printing for metrics artifacts: the ``alchemist stats`` verb.

Renders a ``--metrics`` JSON document as a human briefing: the span
tree with wall/CPU times and self-time, the top spans by cumulative
self-time, derived throughputs (events decoded per second of replay),
cache hit rates, and the raw counter/gauge dump.
"""

from __future__ import annotations

from typing import Any

__all__ = ["render_metrics"]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1000:7.2f}ms"


def _span_rows(node: dict, depth: int, rows: list) -> float:
    """Collect (depth, name, attrs, wall, cpu, self_wall) rows;
    returns the node's wall time (for the parent's self-time)."""
    wall = float(node.get("wall_seconds", 0.0))
    cpu = float(node.get("cpu_seconds", 0.0))
    children = node.get("children", [])
    child_wall = 0.0
    row = [depth, node.get("name", "?"), node.get("attrs", {}),
           wall, cpu, 0.0]
    rows.append(row)
    for child in children:
        child_wall += _span_rows(child, depth + 1, rows)
    row[5] = max(0.0, wall - child_wall)
    return wall


def _fmt_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        text = repr(value) if isinstance(value, str) else str(value)
        if len(text) > 32:
            text = text[:29] + "..."
        parts.append(f"{key}={text}")
    return "  [" + " ".join(parts) + "]"


def _hit_rate(counters: dict, hits_key: str, misses_key: str
              ) -> float | None:
    hits = counters.get(hits_key, 0)
    misses = counters.get(misses_key, 0)
    total = hits + misses
    return hits / total if total else None


def render_metrics(payload: dict[str, Any], *, top: int = 10) -> str:
    """The ``alchemist stats`` body for one validated metrics document."""
    lines: list[str] = []
    command = payload.get("command") or "?"
    exit_code = payload.get("exit_code")
    lines.append(f"metrics:    {payload['schema']} v{payload['version']}"
                 f"  (command: {command}"
                 f"{'' if exit_code is None else f', exit {exit_code}'})")

    rows: list = []
    for span in payload.get("spans", []):
        _span_rows(span, 0, rows)

    if rows:
        lines.append("")
        lines.append("span tree (wall / cpu / self):")
        for depth, name, attrs, wall, cpu, self_wall in rows:
            indent = "  " * depth
            lines.append(f"  {_fmt_seconds(wall)} {_fmt_seconds(cpu)} "
                         f"{_fmt_seconds(self_wall)}  {indent}{name}"
                         f"{_fmt_attrs(attrs)}")
        by_self: dict[str, list[float]] = {}
        for _, name, _, wall, _, self_wall in rows:
            acc = by_self.setdefault(name, [0.0, 0])
            acc[0] += self_wall
            acc[1] += 1
        total_self = sum(acc[0] for acc in by_self.values()) or 1.0
        lines.append("")
        lines.append(f"top spans by cumulative self time (of "
                     f"{_fmt_seconds(total_self).strip()} total):")
        ranked = sorted(by_self.items(), key=lambda kv: -kv[1][0])[:top]
        for name, (self_wall, count) in ranked:
            share = self_wall / total_self
            lines.append(f"  {_fmt_seconds(self_wall)}  {share:6.1%}  "
                         f"{name}  (x{count})")
    else:
        lines.append("")
        lines.append("span tree: empty (telemetry recorded no spans)")

    counters = payload.get("counters", {})
    derived: list[str] = []
    replay_wall = sum(wall for _, name, _, wall, _, _ in rows
                      if name in ("replay", "replay.parallel"))
    events = counters.get("trace.events_decoded", 0)
    if events and replay_wall > 0:
        derived.append(f"  replay throughput:  {events / replay_wall:,.0f}"
                       f" events/s ({events:,} events in "
                       f"{replay_wall:.3f}s)")
    record_wall = sum(wall for _, name, _, wall, _, _ in rows
                      if name == "record")
    written = counters.get("trace.events_written", 0)
    if written and record_wall > 0:
        derived.append(f"  record throughput:  {written / record_wall:,.0f}"
                       f" events/s ({written:,} events in "
                       f"{record_wall:.3f}s)")
    for label, hits_key, misses_key in (
            ("compile cache", "session.compile_cache_hits",
             "session.compile_cache_misses"),
            ("trace cache", "session.trace_cache_hits",
             "session.trace_cache_misses")):
        rate = _hit_rate(counters, hits_key, misses_key)
        if rate is not None:
            derived.append(f"  {label} hit rate: {rate:.0%} "
                           f"({counters.get(hits_key, 0)} hit(s), "
                           f"{counters.get(misses_key, 0)} miss(es))")
    if derived:
        lines.append("")
        lines.append("derived:")
        lines.extend(derived)

    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {counters[name]:>14,}  {name}")
    gauges = payload.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {gauges[name]:>14,.3f}  {name}")
    return "\n".join(lines)
