"""Hierarchical spans and metrics: the profiler's own profiler.

A :class:`Telemetry` object collects three kinds of self-observation:

* **spans** — named, nested wall/CPU timings with attributes, built
  with ``with tm.span("replay", trace=path) as span:``. Spans nest by
  dynamic scope (the innermost open span adopts new children), forming
  the tree ``--metrics`` dumps and ``alchemist stats`` renders.
* **counters** — monotonically accumulated event tallies
  (``tm.count("trace.events_decoded", n)``): decoded events, bytes
  read/written, cache hits/misses, sampled-out events, …
* **gauges** — last-value-wins measurements (``tm.gauge(...)``): pool
  utilization, cache sizes at the end of a run.

Hot loops must never pay for telemetry: instrumented code bumps
counters *once per stage* from tallies the stage keeps anyway, not per
event, and the disabled path (:data:`NULL_TELEMETRY`) records nothing.
Disabled spans still measure wall/CPU time — stage timings (``RunStats``,
``RecordResult.wall_seconds``, per-segment worker costs) are derived
from the span objects in both modes, exactly as the old ad-hoc
``perf_counter`` blocks did, so enabling telemetry can never change a
reported number.

Clocks are injectable (``Telemetry(clock=..., cpu_clock=...)``) so span
trees in tests are deterministic.

Worker processes build their own ``Telemetry`` and ship
``export_spans()`` payloads back; the coordinator stitches them under
its own span with :meth:`Telemetry.attach`, which is how per-segment
replay spans appear under the parallel coordinator span.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Iterator

__all__ = ["Span", "Telemetry", "NullTelemetry", "NULL_TELEMETRY",
           "as_telemetry"]


class Span:
    """One timed, attributed node of the span tree.

    Use as a context manager (obtained from :meth:`Telemetry.span`);
    ``wall_seconds`` / ``cpu_seconds`` are valid after exit. Attributes
    set at creation or via :meth:`set` are plain JSON-able values.
    """

    __slots__ = ("name", "attrs", "children", "wall_seconds",
                 "cpu_seconds", "_tm", "_t0", "_c0")

    def __init__(self, tm: "Telemetry", name: str,
                 attrs: dict[str, Any] | None = None):
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self._tm = tm

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tm = self._tm
        stack = tm._stack
        parent = stack[-1] if stack else None
        (parent.children if parent is not None else tm.spans).append(self)
        stack.append(self)
        self._t0 = tm._wall()
        self._c0 = tm._cpu()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tm = self._tm
        self.cpu_seconds = tm._cpu() - self._c0
        self.wall_seconds = tm._wall() - self._t0
        if tm._stack and tm._stack[-1] is self:
            tm._stack.pop()
        else:  # pragma: no cover - misnested exit; keep the tree sane
            while tm._stack:
                if tm._stack.pop() is self:
                    break
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    @classmethod
    def from_dict(cls, tm: "Telemetry", payload: dict) -> "Span":
        span = cls(tm, payload["name"], payload.get("attrs"))
        span.wall_seconds = float(payload.get("wall_seconds", 0.0))
        span.cpu_seconds = float(payload.get("cpu_seconds", 0.0))
        span.children = [cls.from_dict(tm, child)
                         for child in payload.get("children", ())]
        return span

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Pre-order (depth, span) traversal of this subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


class _NullSpan:
    """Disabled-path span: times itself (stage timings stay honest) but
    records nothing and is never linked into any tree."""

    __slots__ = ("wall_seconds", "cpu_seconds", "_t0", "_c0")

    def __enter__(self) -> "_NullSpan":
        self._t0 = _time.perf_counter()
        self._c0 = _time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cpu_seconds = _time.process_time() - self._c0
        self.wall_seconds = _time.perf_counter() - self._t0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


class Telemetry:
    """Collects one process's span tree, counters, and gauges."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None,
                 cpu_clock: Callable[[], float] | None = None):
        self._wall = clock if clock is not None else _time.perf_counter
        self._cpu = cpu_clock if cpu_clock is not None else \
            _time.process_time
        #: Completed/open top-level spans, in start order (a forest —
        #: one CLI invocation usually produces a single root).
        self.spans: list[Span] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self._stack: list[Span] = []

    # -- spans -------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; use as ``with tm.span("record") as span:``."""
        return Span(self, name, attrs)

    def attach(self, payload: dict | None) -> None:
        """Adopt an exported span tree (e.g. shipped back from a worker
        process) as a child of the currently open span."""
        if not payload:
            return
        span = Span.from_dict(self, payload)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.spans).append(span)

    def export_spans(self) -> dict | None:
        """The first top-level span as a payload dict (what workers ship
        to the coordinator), or None if nothing was recorded."""
        return self.spans[0].to_dict() if self.spans else None

    # -- metrics -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Accumulate ``n`` onto the named counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def merge_counters(self, counters: dict[str, int] | None) -> None:
        """Fold a worker's counter dict into this one (summing)."""
        for name, value in (counters or {}).items():
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record a last-value-wins measurement."""
        self.gauges[name] = value

    # -- introspection -----------------------------------------------------

    def find_spans(self, name: str) -> list[Span]:
        """Every span named ``name``, in pre-order."""
        return [span for root in self.spans
                for _, span in root.walk() if span.name == name]


class NullTelemetry:
    """The disabled path: API-compatible, records nothing.

    Spans still measure time (see :class:`_NullSpan`) so instrumented
    code can read ``span.wall_seconds`` unconditionally; everything
    else is a no-op. Shared as :data:`NULL_TELEMETRY` — the class keeps
    no state, so one instance serves the whole process.
    """

    enabled = False
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    spans: list = []

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NullSpan()

    def attach(self, payload: dict | None) -> None:
        pass

    def export_spans(self) -> None:
        return None

    def count(self, name: str, n: int = 1) -> None:
        pass

    def merge_counters(self, counters: dict[str, int] | None) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def find_spans(self, name: str) -> list:
        return []


#: Process-wide disabled telemetry; the default everywhere.
NULL_TELEMETRY = NullTelemetry()


def as_telemetry(tm: "Telemetry | NullTelemetry | None"
                 ) -> "Telemetry | NullTelemetry":
    """Normalize an optional telemetry argument (None -> disabled)."""
    return tm if tm is not None else NULL_TELEMETRY
