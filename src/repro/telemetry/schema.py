"""The ``--metrics`` artifact: schema-versioned span tree + metric dump.

One JSON document per instrumented run::

    {
      "schema": "alchemist-metrics",
      "version": 1,
      "command": "analyze",
      "argv": ["analyze", "prog.mc", "--metrics", "m.json"],
      "exit_code": 0,
      "spans": [ {span tree ...} ],
      "counters": {"trace.events_decoded": 12345, ...},
      "gauges": {"session.trace_cache_size": 1, ...}
    }

Span nodes carry ``name``, ``wall_seconds``, ``cpu_seconds`` and
optional ``attrs``/``children``. :func:`validate_metrics` is a strict
structural check (no external jsonschema dependency — the container
toolchain is frozen) used by tests, ``alchemist stats`` and the CI
smoke job; it reports the JSON-pointer-ish path of the first violation.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.spans import NullTelemetry, Telemetry

__all__ = ["METRICS_SCHEMA", "METRICS_VERSION", "MetricsSchemaError",
           "metrics_payload", "validate_metrics"]

#: Identifies the artifact kind; readers reject anything else.
METRICS_SCHEMA = "alchemist-metrics"

#: Bumped on breaking payload-shape changes.
METRICS_VERSION = 1


class MetricsSchemaError(ValueError):
    """A metrics payload that violates the schema (path in message)."""


def metrics_payload(tm: Telemetry | NullTelemetry, *,
                    command: str = "", argv: list[str] | None = None,
                    exit_code: int | None = None) -> dict[str, Any]:
    """Wrap one Telemetry's state into the versioned artifact shape."""
    return {
        "schema": METRICS_SCHEMA,
        "version": METRICS_VERSION,
        "command": command,
        "argv": list(argv) if argv is not None else [],
        "exit_code": exit_code,
        "spans": [span.to_dict() for span in tm.spans],
        "counters": dict(tm.counters),
        "gauges": dict(tm.gauges),
    }


def _fail(path: str, why: str) -> None:
    raise MetricsSchemaError(f"{path}: {why}")


def _check_span(node: Any, path: str) -> None:
    if not isinstance(node, dict):
        _fail(path, f"span must be an object, got {type(node).__name__}")
    allowed = {"name", "wall_seconds", "cpu_seconds", "attrs", "children"}
    unknown = set(node) - allowed
    if unknown:
        _fail(path, f"unknown span keys: {', '.join(sorted(unknown))}")
    name = node.get("name")
    if not isinstance(name, str) or not name:
        _fail(path + "/name", "span name must be a non-empty string")
    for key in ("wall_seconds", "cpu_seconds"):
        value = node.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            _fail(f"{path}/{key}", "must be a number")
        if value < 0:
            _fail(f"{path}/{key}", f"must be >= 0, got {value}")
    attrs = node.get("attrs", {})
    if not isinstance(attrs, dict):
        _fail(path + "/attrs", "must be an object")
    for key in attrs:
        if not isinstance(key, str):
            _fail(path + "/attrs", f"non-string attribute key {key!r}")
    children = node.get("children", [])
    if not isinstance(children, list):
        _fail(path + "/children", "must be an array")
    for i, child in enumerate(children):
        _check_span(child, f"{path}/children/{i}")


def validate_metrics(payload: Any) -> dict[str, Any]:
    """Validate a metrics document; returns it on success.

    Raises :class:`MetricsSchemaError` naming the offending path on the
    first violation.
    """
    if not isinstance(payload, dict):
        _fail("", f"metrics document must be an object, "
                  f"got {type(payload).__name__}")
    if payload.get("schema") != METRICS_SCHEMA:
        _fail("/schema", f"expected {METRICS_SCHEMA!r}, "
                         f"got {payload.get('schema')!r}")
    version = payload.get("version")
    if not isinstance(version, int) or isinstance(version, bool):
        _fail("/version", "must be an integer")
    if version > METRICS_VERSION:
        _fail("/version", f"version {version} is newer than this "
                          f"reader understands ({METRICS_VERSION})")
    if not isinstance(payload.get("command", ""), str):
        _fail("/command", "must be a string")
    argv = payload.get("argv", [])
    if not isinstance(argv, list) or any(not isinstance(a, str)
                                         for a in argv):
        _fail("/argv", "must be an array of strings")
    exit_code = payload.get("exit_code")
    if exit_code is not None and (not isinstance(exit_code, int)
                                  or isinstance(exit_code, bool)):
        _fail("/exit_code", "must be an integer or null")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        _fail("/spans", "must be an array of span objects")
    for i, span in enumerate(spans):
        _check_span(span, f"/spans/{i}")
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        _fail("/counters", "must be an object")
    for key, value in counters.items():
        if not isinstance(key, str):
            _fail("/counters", f"non-string counter name {key!r}")
        if not isinstance(value, int) or isinstance(value, bool):
            _fail(f"/counters/{key}", "counter values must be integers")
    gauges = payload.get("gauges")
    if not isinstance(gauges, dict):
        _fail("/gauges", "must be an object")
    for key, value in gauges.items():
        if not isinstance(key, str):
            _fail("/gauges", f"non-string gauge name {key!r}")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            _fail(f"/gauges/{key}", "gauge values must be numbers")
    return payload
