"""Self-observability for the profiler: spans, metrics, structured logs.

The pipeline that measures other programs must be able to report where
its *own* time and memory go. This package is that layer:

* :class:`Telemetry` / :class:`Span` — hierarchical wall/CPU spans,
  counters, and gauges (:mod:`repro.telemetry.spans`); disabled by
  default via :data:`NULL_TELEMETRY`, which adds no measurable
  overhead (nothing per event, ever).
* :func:`get_logger` / :func:`configure_logging` — structured JSON
  logging on stderr, controlled by ``ALCHEMIST_LOG`` or
  ``--log-level`` (:mod:`repro.telemetry.logs`).
* :func:`metrics_payload` / :func:`validate_metrics` — the versioned
  ``--metrics`` artifact and its validator
  (:mod:`repro.telemetry.schema`).
* :func:`render_metrics` — the ``alchemist stats`` presentation
  (:mod:`repro.telemetry.render`).

Every stage of the pipeline takes an optional ``telemetry`` handle and
wraps its work in spans: ``Session`` (compile/record/replay/live),
the trace writer and sampling gate, serial and parallel replay (with
per-worker spans stitched under the coordinator), the batch driver,
and the what-if advisor sweep. Plugins receive the same handle via
``AnalysisContext.telemetry``.
"""

from repro.telemetry.logs import (LOG_ENV_VAR, LOG_LEVELS, JsonFormatter,
                                  configure_logging, get_logger)
from repro.telemetry.render import render_metrics
from repro.telemetry.schema import (METRICS_SCHEMA, METRICS_VERSION,
                                    MetricsSchemaError, metrics_payload,
                                    validate_metrics)
from repro.telemetry.spans import (NULL_TELEMETRY, NullTelemetry, Span,
                                   Telemetry, as_telemetry)

__all__ = [
    "Telemetry", "Span", "NullTelemetry", "NULL_TELEMETRY",
    "as_telemetry",
    "get_logger", "configure_logging", "JsonFormatter",
    "LOG_ENV_VAR", "LOG_LEVELS",
    "METRICS_SCHEMA", "METRICS_VERSION", "MetricsSchemaError",
    "metrics_payload", "validate_metrics", "render_metrics",
]
