"""Structured logging for the whole pipeline.

Every module logs through ``get_logger(__name__)`` — a stdlib logger
under the ``alchemist`` namespace, so one :func:`configure_logging`
call controls the entire tree. Records render as one JSON object per
line on **stderr** (stdout is reserved for results; see the CLI's
stream discipline), with ``ts`` (monotonic-ish wall clock), ``level``,
``logger``, ``msg``, and any ``extra`` fields the call site attached::

    log = get_logger(__name__)
    log.info("replay finished", extra={"events": 12345, "trace": path})

Configuration sources, highest priority first:

1. ``--log-level LEVEL`` (any instrumented CLI verb);
2. the ``ALCHEMIST_LOG`` environment variable (e.g.
   ``ALCHEMIST_LOG=debug alchemist analyze …``);
3. the default: ``warning`` — silent in normal operation.

Logging stays *off the hot paths*: nothing in the interpreter or
replay event loops logs per event; stages log once with their tallies.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Any

__all__ = ["get_logger", "configure_logging", "JsonFormatter",
           "LOG_ENV_VAR", "LOG_LEVELS"]

#: Environment variable consulted when no --log-level flag is given.
LOG_ENV_VAR = "ALCHEMIST_LOG"

#: Accepted level names (CLI choices and env values), lowercase.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

#: Root of the package's logger tree.
_ROOT_LOGGER_NAME = "alchemist"

#: Attributes of a vanilla LogRecord; anything else came via ``extra``.
_STANDARD_ATTRS = frozenset(vars(
    logging.LogRecord("", 0, "", 0, "", (), None)
)) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record; ``extra`` fields ride along."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in vars(record).items():
            if key not in _STANDARD_ATTRS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc"] = str(record.exc_info[1])
        try:
            return json.dumps(payload, default=repr)
        except (TypeError, ValueError):  # pragma: no cover - defensive
            return json.dumps({"ts": time.time(), "level": "error",
                               "logger": _ROOT_LOGGER_NAME,
                               "msg": "unserializable log record"})


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``alchemist`` tree.

    Dotted module names are grafted under the root (``repro.trace.x``
    -> ``alchemist.repro.trace.x``) so one handler/level governs all.
    """
    if not name:
        return logging.getLogger(_ROOT_LOGGER_NAME)
    return logging.getLogger(f"{_ROOT_LOGGER_NAME}.{name}")


def _resolve_level(level: str | int | None) -> int:
    if level is None:
        level = os.environ.get(LOG_ENV_VAR) or "warning"
    if isinstance(level, int):
        return level
    name = level.strip().lower()
    if name not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r} (known: {', '.join(LOG_LEVELS)})")
    return getattr(logging, name.upper())


def configure_logging(level: str | int | None = None, *,
                      stream=None, force: bool = True) -> logging.Logger:
    """(Re)configure the ``alchemist`` logger tree; returns the root.

    ``level=None`` consults ``ALCHEMIST_LOG`` and falls back to
    ``warning``. ``stream`` defaults to ``sys.stderr`` *at call time*
    (not import time), so pytest's capture and shell redirections both
    behave. With ``force`` the existing handlers are replaced — calling
    this twice (e.g. a CLI flag after an env default) must not
    double-log.
    """
    root = logging.getLogger(_ROOT_LOGGER_NAME)
    root.setLevel(_resolve_level(level))
    if force:
        for handler in list(root.handlers):
            root.removeHandler(handler)
    if not root.handlers:
        handler = logging.StreamHandler(
            stream if stream is not None else sys.stderr)
        handler.setFormatter(JsonFormatter())
        root.addHandler(handler)
    # Never bubble into the application's root logger configuration.
    root.propagate = False
    return root
