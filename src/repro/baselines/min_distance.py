"""TEST-style minimum dependence distance profiling (Chen & Olukotun).

TEST [CGO'03] profiles, for each loop, the minimum distance *in
iterations* between dependent accesses of different iterations, to
drive thread-level speculation. Two limitations the paper contrasts
Alchemist against:

* loops only — procedure/conditional constructs and their
  continuations are invisible (gzip's ``flush_block`` candidate simply
  does not appear);
* distances are attributed to the *innermost* enclosing loop, so an
  outer loop's parallelism cannot be judged from the profile of its
  inner loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.constructs import ConstructTable
from repro.core.profile_data import DepKind
from repro.core.tracer import AlchemistTracer
from repro.ir.cfg import ProgramIR
from repro.ir.lowering import compile_source
from repro.runtime.interpreter import Interpreter


@dataclass
class LoopStats:
    """Per-loop minimum iteration distances."""

    loop_pc: int
    name: str
    iterations: int = 0
    #: (head pc, tail pc, kind) -> minimum distance in iterations (>= 1).
    min_distance: dict[tuple, int] = field(default_factory=dict)

    def record(self, head_pc: int, tail_pc: int, kind: DepKind,
               distance: int) -> None:
        key = (head_pc, tail_pc, kind)
        current = self.min_distance.get(key)
        if current is None or distance < current:
            self.min_distance[key] = distance

    def overall_min_distance(self) -> int | None:
        """The loop's speculation bound: the smallest distance of any
        cross-iteration dependence (None = iterations independent)."""
        if not self.min_distance:
            return None
        return min(self.min_distance.values())


@dataclass
class LoopDistanceProfile:
    loops: dict[int, LoopStats] = field(default_factory=dict)
    instructions: int = 0

    def by_name(self, name: str) -> LoopStats:
        for stats in self.loops.values():
            if stats.name == name:
                return stats
        raise KeyError(name)


class MinDistanceTracer(AlchemistTracer):
    """Tags accesses with (innermost loop instance, iteration number).

    Reuses the execution-indexing stack for loop entry/exit/iteration
    events but replaces Alchemist's construct-walking profile with the
    iteration-distance shadow.
    """

    def __init__(self, table: ConstructTable, pool_size: int = 4096):
        super().__init__(table, pool_size)
        self.result = LoopDistanceProfile()
        #: Stack of [loop_pc, activation serial, iteration index].
        self._loops: list[list[int]] = []
        self._activation_counter = 0
        #: A just-popped loop entry that may be a rule-4 iteration
        #: boundary: (loop_pc, timestamp). Rule 4 pops the previous
        #: iteration and pushes the next at the same timestamp; if the
        #: matching push never comes, the activation has ended.
        self._pending_pop: tuple[int, int] | None = None
        # addr -> [write tag | None, {read_pc: read tag}] where a tag is
        # (loop_pc, activation, iteration, pc) or None for non-loop code.
        self._dist_shadow: dict[int, list] = {}
        self.stack.push_observer = self._on_push
        self.stack.pop_observer = self._on_pop

    # -- loop tracking -------------------------------------------------------

    def _flush_pending(self) -> None:
        """Commit a deferred pop: the sibling push never arrived, so the
        loop activation really ended."""
        if self._pending_pop is not None:
            self._pending_pop = None
            if self._loops:
                self._loops.pop()

    def _on_push(self, static, timestamp: int) -> None:
        if not static.is_loop:
            self._flush_pending()
            return
        pending = self._pending_pop
        self._pending_pop = None
        if (pending is not None and pending == (static.pc, timestamp)
                and self._loops and self._loops[-1][0] == static.pc):
            # Rule-4 pop+push pair: the same activation's next iteration.
            self._loops[-1][2] += 1
        else:
            if pending is not None and self._loops:
                self._loops.pop()  # the pending pop was a real exit
            self._activation_counter += 1
            self._loops.append([static.pc, self._activation_counter, 0])
        stats = self._stats_for(static)
        stats.iterations += 1

    def _on_pop(self, node, timestamp: int) -> None:
        if not node.static.is_loop:
            return
        self._flush_pending()
        if self._loops and self._loops[-1][0] == node.static.pc:
            self._pending_pop = (node.static.pc, timestamp)

    def _stats_for(self, static) -> LoopStats:
        stats = self.result.loops.get(static.pc)
        if stats is None:
            stats = LoopStats(static.pc, static.name)
            self.result.loops[static.pc] = stats
        return stats

    def _tag(self, pc: int):
        self._flush_pending()
        if not self._loops:
            return None
        loop_pc, activation, iteration = self._loops[-1]
        return (loop_pc, activation, iteration, pc)

    # -- dependence detection ----------------------------------------------------

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        tag = self._tag(pc)
        entry = self._dist_shadow.get(addr)
        if entry is None:
            self._dist_shadow[addr] = [None, {pc: tag}]
            return
        self._note(entry[0], tag, pc, DepKind.RAW)
        entry[1][pc] = tag

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        tag = self._tag(pc)
        entry = self._dist_shadow.get(addr)
        if entry is None:
            self._dist_shadow[addr] = [(pc, tag), {}]
            return
        write, reads = entry
        for read_pc, read_tag in reads.items():
            self._note_pair(read_tag, tag, read_pc, pc, DepKind.WAR)
        if write is not None:
            self._note_pair(write[1], tag, write[0], pc, DepKind.WAW)
        entry[0] = (pc, tag)
        entry[1] = {}

    def _note(self, write, tag, tail_pc: int, kind: DepKind) -> None:
        if write is None:
            return
        self._note_pair(write[1], tag, write[0], tail_pc, kind)

    def _note_pair(self, head_tag, tail_tag, head_pc: int, tail_pc: int,
                   kind: DepKind) -> None:
        if head_tag is None or tail_tag is None:
            return
        head_loop, head_act, head_iter, _ = head_tag
        tail_loop, tail_act, tail_iter, _ = tail_tag
        if head_loop != tail_loop or head_act != tail_act:
            return  # TEST: same-loop, same-activation distances only
        distance = tail_iter - head_iter
        if distance < 1:
            return  # intra-iteration
        stats = self.result.loops.get(head_loop)
        if stats is not None:
            stats.record(head_pc, tail_pc, kind, distance)

    def on_frame_free(self, lo: int, hi: int) -> None:
        super().on_frame_free(lo, hi)
        shadow = self._dist_shadow
        if hi - lo < len(shadow):
            for addr in range(lo, hi):
                shadow.pop(addr, None)
        else:
            for addr in [a for a in shadow if lo <= a < hi]:
                del shadow[addr]

    def on_finish(self, timestamp: int) -> None:
        super().on_finish(timestamp)
        self.result.instructions = timestamp


def profile_loop_distances(source: str | None = None, *,
                           program: ProgramIR | None = None
                           ) -> LoopDistanceProfile:
    """Run a program under the TEST-style baseline."""
    if program is None:
        if source is None:
            raise ValueError("need source or program")
        program = compile_source(source)
    table = ConstructTable(program)
    tracer = MinDistanceTracer(table)
    Interpreter(program, tracer).run()
    return tracer.result
