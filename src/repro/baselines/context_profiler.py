"""Context-sensitive dependence profiling (the paper's foil).

Attributes every dependence edge to the *calling context* of its head
access — the chain of function names on the call stack — exactly the
granularity of context-sensitive profilers ([2], and the dependence
profilers of [6, 8] the paper discusses). No loop-iteration structure
is recorded.

The paper's §III-B argument, reproducible with this class: take

    F() { for (i...) for (j...) { A(); B(); } }

and four variants whose A-to-B dependence stays within a j-iteration,
crosses j-iterations, crosses i-iterations, or crosses calls to F.
All four produce the *same* head context ``main -> F -> A`` and tail
context ``main -> F -> B``, so a context profile cannot tell which
loop (if any) is parallelizable — while Alchemist's execution index
distinguishes all four (see ``tests/core/test_profile_integration.py``
and ``benchmarks/bench_baselines.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.profile_data import DepKind
from repro.ir.cfg import ProgramIR
from repro.ir.lowering import compile_source
from repro.runtime.interpreter import Interpreter
from repro.runtime.tracing import Tracer

Context = tuple[str, ...]


@dataclass
class ContextEdge:
    """One dependence edge attributed to (head context, tail context)."""

    head_context: Context
    tail_context: Context
    head_pc: int
    tail_pc: int
    kind: DepKind
    min_tdep: int
    count: int = 1

    def observe(self, tdep: int) -> None:
        self.count += 1
        if tdep < self.min_tdep:
            self.min_tdep = tdep


@dataclass
class ContextProfile:
    """All context-attributed edges of one run."""

    edges: dict[tuple, ContextEdge] = field(default_factory=dict)
    instructions: int = 0

    def record(self, head_context: Context, tail_context: Context,
               head_pc: int, tail_pc: int, kind: DepKind,
               tdep: int) -> None:
        key = (head_context, tail_context, head_pc, tail_pc, kind)
        edge = self.edges.get(key)
        if edge is None:
            self.edges[key] = ContextEdge(head_context, tail_context,
                                          head_pc, tail_pc, kind, tdep)
        else:
            edge.observe(tdep)

    def edges_between(self, head_fn: str,
                      tail_fn: str) -> list[ContextEdge]:
        """Edges whose head context ends in ``head_fn`` and tail context
        ends in ``tail_fn``."""
        return [e for e in self.edges.values()
                if e.head_context and e.head_context[-1] == head_fn
                and e.tail_context and e.tail_context[-1] == tail_fn]

    def attribution_signature(self, head_fn: str,
                              tail_fn: str) -> set[tuple]:
        """What this profiler can say about head_fn -> tail_fn
        dependences: the set of (head context, tail context) pairs.
        Programs this signature cannot separate are indistinguishable
        to context-sensitive profiling."""
        return {(e.head_context, e.tail_context)
                for e in self.edges_between(head_fn, tail_fn)}


class ContextSensitiveTracer(Tracer):
    """Shadow-memory dependence detection with calling-context
    attribution only."""

    def __init__(self) -> None:
        self.profile = ContextProfile()
        self._stack: list[str] = []
        self._context: Context = ()
        # addr -> [ (write_pc, write_ctx, write_t) | None,
        #           {read_pc: (read_ctx, read_t)} ]
        self._shadow: dict[int, list] = {}

    # -- context maintenance ------------------------------------------------

    def on_enter_function(self, fn_name: str, entry_pc: int,
                          timestamp: int) -> None:
        self._stack.append(fn_name)
        self._context = tuple(self._stack)

    def on_exit_function(self, fn_name: str, timestamp: int) -> None:
        self._stack.pop()
        self._context = tuple(self._stack)

    # -- dependence detection ---------------------------------------------------

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        entry = self._shadow.get(addr)
        if entry is None:
            self._shadow[addr] = [None, {pc: (self._context, timestamp)}]
            return
        write = entry[0]
        if write is not None:
            self.profile.record(write[1], self._context, write[0], pc,
                                DepKind.RAW, timestamp - write[2])
        entry[1][pc] = (self._context, timestamp)

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        entry = self._shadow.get(addr)
        if entry is None:
            self._shadow[addr] = [(pc, self._context, timestamp), {}]
            return
        write, reads = entry
        for read_pc, (read_ctx, read_t) in reads.items():
            self.profile.record(read_ctx, self._context, read_pc, pc,
                                DepKind.WAR, timestamp - read_t)
        if write is not None:
            self.profile.record(write[1], self._context, write[0], pc,
                                DepKind.WAW, timestamp - write[2])
        entry[0] = (pc, self._context, timestamp)
        entry[1] = {}

    def on_frame_free(self, lo: int, hi: int) -> None:
        shadow = self._shadow
        if hi - lo < len(shadow):
            for addr in range(lo, hi):
                shadow.pop(addr, None)
        else:
            for addr in [a for a in shadow if lo <= a < hi]:
                del shadow[addr]

    def on_finish(self, timestamp: int) -> None:
        self.profile.instructions = timestamp


def profile_with_contexts(source: str | None = None, *,
                          program: ProgramIR | None = None
                          ) -> ContextProfile:
    """Deprecated shim: run the registered ``context`` analysis live.

    Prefer ``Session.analyze(source, ["context"])`` (:mod:`repro.api`),
    which shares one recording with every other analysis.
    """
    from repro.analyses.builtin import ContextDependenceAnalysis

    if program is None:
        if source is None:
            raise ValueError("need source or program")
        program = compile_source(source)
    analysis = ContextDependenceAnalysis()
    Interpreter(program, analysis).run()
    return analysis.profile
