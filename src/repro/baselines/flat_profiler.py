"""Flat (context-insensitive) dependence profiling — the weakest foil.

"Most traditional profiling techniques simply aggregate information
according to static artifacts such as instructions and functions"
(paper §III, opening). This profiler is that strawman made concrete:
every dependence is attributed to its static ``(head pc, tail pc)``
pair and nothing else — no calling context, no loop iterations, no
construct nesting. It can answer "is there *ever* a dependence between
these two statements, and how close does it get?", but not "does it
cross the loop boundary?", which is the question parallelization needs
(the paper's Fig. 4(c) discussion).

Used by ``benchmarks/bench_baselines.py`` to render the §III-B
four-case experiment: flat and context-sensitive profiles are
identical across all four variants; Alchemist's index tree separates
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.profile_data import DepKind
from repro.ir.cfg import ProgramIR
from repro.ir.lowering import compile_source
from repro.runtime.interpreter import Interpreter
from repro.runtime.tracing import Tracer


@dataclass
class FlatEdge:
    """One static dependence edge, aggregated over the whole run."""

    head_pc: int
    tail_pc: int
    kind: DepKind
    min_tdep: int
    count: int = 1

    def observe(self, tdep: int) -> None:
        self.count += 1
        if tdep < self.min_tdep:
            self.min_tdep = tdep


@dataclass
class FlatProfile:
    """All statically-attributed edges of one run."""

    program: ProgramIR
    edges: dict[tuple[int, int, DepKind], FlatEdge] = field(
        default_factory=dict)
    instructions: int = 0

    def record(self, head_pc: int, tail_pc: int, kind: DepKind,
               tdep: int) -> None:
        key = (head_pc, tail_pc, kind)
        edge = self.edges.get(key)
        if edge is None:
            self.edges[key] = FlatEdge(head_pc, tail_pc, kind, tdep)
        else:
            edge.observe(tdep)

    def edges_between(self, head_fn: str, tail_fn: str) -> list[FlatEdge]:
        """Edges whose endpoints live in the named functions."""
        return [e for e in self.edges.values()
                if self.program.fn_of(e.head_pc) == head_fn
                and self.program.fn_of(e.tail_pc) == tail_fn]

    def attribution_signature(self, head_fn: str,
                              tail_fn: str) -> set[tuple]:
        """Everything this profiler can say about head_fn -> tail_fn
        dependences: the set of static source-line pairs. Variants that
        share a signature are indistinguishable to flat profiling."""
        return {(self.program.loc_of(e.head_pc)[0],
                 self.program.loc_of(e.tail_pc)[0], e.kind)
                for e in self.edges_between(head_fn, tail_fn)}


class FlatTracer(Tracer):
    """Shadow-memory dependence detection, static attribution only."""

    def __init__(self, program: ProgramIR) -> None:
        self.profile = FlatProfile(program)
        # addr -> [ (write_pc, write_t) | None, {read_pc: read_t} ]
        self._shadow: dict[int, list] = {}

    def on_read(self, addr: int, pc: int, timestamp: int) -> None:
        entry = self._shadow.get(addr)
        if entry is None:
            self._shadow[addr] = [None, {pc: timestamp}]
            return
        write = entry[0]
        if write is not None:
            self.profile.record(write[0], pc, DepKind.RAW,
                                timestamp - write[1])
        entry[1][pc] = timestamp

    def on_write(self, addr: int, pc: int, timestamp: int) -> None:
        entry = self._shadow.get(addr)
        if entry is None:
            self._shadow[addr] = [(pc, timestamp), {}]
            return
        write, reads = entry
        for read_pc, read_t in reads.items():
            self.profile.record(read_pc, pc, DepKind.WAR,
                                timestamp - read_t)
        if write is not None:
            self.profile.record(write[0], pc, DepKind.WAW,
                                timestamp - write[1])
        entry[0] = (pc, timestamp)
        entry[1] = {}

    def on_frame_free(self, lo: int, hi: int) -> None:
        shadow = self._shadow
        if hi - lo < len(shadow):
            for addr in range(lo, hi):
                shadow.pop(addr, None)
        else:
            for addr in [a for a in shadow if lo <= a < hi]:
                del shadow[addr]

    def on_finish(self, timestamp: int) -> None:
        self.profile.instructions = timestamp


def profile_flat(source: str | None = None, *,
                 program: ProgramIR | None = None) -> FlatProfile:
    """Deprecated shim: run the registered ``flat`` analysis live.

    Prefer ``Session.analyze(source, ["flat"])`` (:mod:`repro.api`),
    which shares one recording with every other analysis.
    """
    from repro.analyses.builtin import FlatDependenceAnalysis

    if program is None:
        if source is None:
            raise ValueError("need source or program")
        program = compile_source(source)
    analysis = FlatDependenceAnalysis()
    Interpreter(program, analysis).run()
    return analysis.profile
