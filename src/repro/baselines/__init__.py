"""Baseline dependence profilers the paper compares against.

* :mod:`repro.baselines.flat_profiler` — context-insensitive
  aggregation by static statement pairs, the "traditional profiling"
  strawman of §III's opening paragraph.
* :mod:`repro.baselines.context_profiler` — context-sensitive
  dependence profiling in the style the paper's §III-B criticizes
  (dependences attributed to calling contexts, as in Ammons/Ball/Larus
  and the speculative-optimization profilers [6,8]). Its failure mode
  is reproducible: the four dependence placements of the paper's
  ``F``/``A``/``B`` example are indistinguishable to it.
* :mod:`repro.baselines.min_distance` — a TEST-style profiler (Chen &
  Olukotun, CGO'03) that reports the minimum dependence distance in
  *iterations* per loop. It covers loops only; Alchemist's
  construct-vs-continuation profile subsumes it.
"""

from repro.baselines.context_profiler import (ContextProfile,
                                              ContextSensitiveTracer,
                                              profile_with_contexts)
from repro.baselines.flat_profiler import (FlatProfile, FlatTracer,
                                           profile_flat)
from repro.baselines.min_distance import (LoopDistanceProfile,
                                          MinDistanceTracer,
                                          profile_loop_distances)

__all__ = [
    "ContextProfile",
    "ContextSensitiveTracer",
    "profile_with_contexts",
    "FlatProfile",
    "FlatTracer",
    "profile_flat",
    "LoopDistanceProfile",
    "MinDistanceTracer",
    "profile_loop_distances",
]
