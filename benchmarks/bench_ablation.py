"""Ablations for the design choices DESIGN.md calls out.

* privatization (the paper's WAR/WAW transformations) on/off in the
  futures simulation;
* construct-pool sizing (the paper fixes 1M entries; lazy retirement
  keeps durations and within-instance violations invariant, while a
  larger pool observes monotonically more dependence occurrences);
* WAR/WAW tracking on/off in the profiler (event volume).
"""

from repro.bench import table5_rows
from repro.core.alchemist import Alchemist, ProfileOptions
from repro.core.profile_data import DepKind
from repro.ir import compile_source
from repro.workloads import get

from conftest import emit


def test_privatization_ablation(benchmark):
    """Without privatization the WAR/WAW constraints bite and speedups
    collapse toward 1 — quantifying why the paper's transformations
    matter."""

    def run():
        with_priv = {r.name: r.speedup
                     for r in table5_rows(scale=1.0, privatize=True)}
        without = {r.name: r.speedup
                   for r in table5_rows(scale=1.0, privatize=False)}
        return with_priv, without

    with_priv, without = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: privatization of WAR/WAW conflicts (4 workers)",
             f"{'benchmark':10s} {'privatized':>11s} {'raw':>8s}"]
    for name in with_priv:
        lines.append(f"{name:10s} {with_priv[name]:11.2f} "
                     f"{without[name]:8.2f}")
        assert without[name] <= with_priv[name] + 1e-9
    # At least the stream-state-heavy benchmarks must collapse.
    assert without["bzip2"] < with_priv["bzip2"] / 1.5
    emit("ablation_privatization", "\n".join(lines))


def test_pool_size_ablation(benchmark):
    """Lazy retirement preserves the *profiling result* across pool
    sizes — the paper's Theorem 1 argument. What is invariant is every
    violation decision (an edge with ``Tdep <= Tdur`` always finds its
    construct node alive) plus all durations and instance counts. What
    may legitimately differ is the set of *safe* edges recorded: a
    larger pool keeps nodes alive past their retirement horizon, so
    dependences with ``Tdep > Tdur`` — which can never violate — are
    sometimes additionally observed."""
    workload = get("gzip", 0.5)
    program = compile_source(workload.source)

    def profile_with(pool_size):
        alch = Alchemist(ProfileOptions(pool_size=pool_size))
        return alch.profile(program=program)

    def run():
        return {size: profile_with(size) for size in (16, 512, 16384)}

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    def violations(report):
        found = {}
        for pc, profile in report.store.profiles.items():
            for kind in (DepKind.RAW, DepKind.WAW, DepKind.WAR):
                for e in profile.violating_edges(kind,
                                                 include_induction=True):
                    found[(pc, e.head_pc, e.tail_pc, kind)] = e.min_tdep
        return found

    def durations(report):
        return {pc: (p.total_duration, p.instances, p.max_duration)
                for pc, p in report.store.profiles.items()}

    prev_viol = None
    baseline_dur = None
    lines = ["Ablation: construct pool initial size (gzip)",
             "(durations are pool-size invariant; observed dependences",
             " grow monotonically with pool size, never losing a",
             " violation — Theorem 1's retirement-safety argument)",
             f"{'size':>8s} {'capacity':>9s} {'grows':>7s} "
             f"{'reuses':>8s} {'max_scan':>9s} {'violations':>11s}"]
    for size in sorted(reports):
        report = reports[size]
        pool = report.stats.pool
        viol = violations(report)
        lines.append(f"{size:8d} {pool.capacity:9d} {pool.grows:7d} "
                     f"{pool.reuses:8d} {pool.max_scan:9d} "
                     f"{len(viol):11d}")
        if baseline_dur is None:
            baseline_dur = durations(report)
        else:
            # Durations and instance counts never depend on the pool.
            assert durations(report) == baseline_dur
        if prev_viol is not None:
            # A larger pool keeps nodes alive longer, so it observes a
            # superset of dependence occurrences: every violation seen
            # with the smaller pool is still seen, at an equal or
            # smaller min Tdep. (An occurrence whose Tdep is within its
            # *instance's* duration is caught at every size — the
            # paper's guarantee; the monotone part covers occurrences
            # landing in shorter sibling instances.)
            assert set(prev_viol) <= set(viol)
            for key, tdep in prev_viol.items():
                assert viol[key] <= tdep, key
        prev_viol = viol
    emit("ablation_pool_size", "\n".join(lines))


def test_war_waw_tracking_ablation(benchmark):
    """Event volume and cost with and without WAR/WAW profiling."""
    workload = get("bzip2", 0.5)
    program = compile_source(workload.source)

    def run():
        full = Alchemist(ProfileOptions(track_war_waw=True)).profile(
            program=program)
        raw_only = Alchemist(ProfileOptions(track_war_waw=False)).profile(
            program=program)
        return full, raw_only

    full, raw_only = benchmark.pedantic(run, rounds=1, iterations=1)
    assert raw_only.stats.war_events == 0
    assert raw_only.stats.waw_events == 0
    assert full.stats.war_events > 0
    assert full.stats.raw_events == raw_only.stats.raw_events
    lines = [
        "Ablation: WAR/WAW tracking (bzip2)",
        f"full    : raw={full.stats.raw_events} "
        f"war={full.stats.war_events} waw={full.stats.waw_events} "
        f"wall={full.stats.wall_seconds:.3f}s",
        f"raw-only: raw={raw_only.stats.raw_events} war=0 waw=0 "
        f"wall={raw_only.stats.wall_seconds:.3f}s",
    ]
    emit("ablation_war_waw", "\n".join(lines))
