"""Table V: simulated parallelization speedups on 4 workers.

Paper: bzip2 3.46x, ogg 3.95x, par2 1.78x, aes 1.63x. The shape to
hold: bzip2/ogg near-linear, par2/aes clearly sublinear but winning,
and that ordering.
"""

from repro.bench import render_table5, table5_rows

from conftest import emit


def test_table5(benchmark):
    rows = benchmark.pedantic(table5_rows, kwargs={"scale": 1.0,
                                                   "workers": 4},
                              rounds=1, iterations=1)
    by_name = {r.name: r for r in rows}
    assert by_name["bzip2"].speedup > 2.5
    assert by_name["ogg"].speedup > 2.5
    assert 1.3 < by_name["par2"].speedup < 3.2
    assert 1.3 < by_name["aes"].speedup < 3.2
    near_linear = min(by_name["bzip2"].speedup, by_name["ogg"].speedup)
    serial_bound = max(by_name["par2"].speedup, by_name["aes"].speedup)
    assert near_linear > serial_bound
    emit("table5", render_table5(rows))


def test_table5_worker_sweep(benchmark):
    """Speedup as a function of worker count (extension of Table V)."""

    def sweep():
        lines = ["Table V extension: speedup vs worker count"]
        header = f"{'benchmark':10s}" + "".join(
            f"{w:>8d}w" for w in (1, 2, 4, 8))
        lines.append(header)
        results = {}
        for workers in (1, 2, 4, 8):
            for row in table5_rows(scale=1.0, workers=workers):
                results.setdefault(row.name, {})[workers] = row.speedup
        for name, per_w in results.items():
            lines.append(f"{name:10s}" + "".join(
                f"{per_w[w]:8.2f} " for w in (1, 2, 4, 8)))
        return lines, results

    lines, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name, per_w in results.items():
        speeds = [per_w[w] for w in (1, 2, 4, 8)]
        assert speeds == sorted(speeds)  # monotone in workers
    emit("table5_worker_sweep", "\n".join(lines))
