"""§III-B baseline comparison: flat vs. context-sensitive vs. Alchemist.

The paper's "Inadequacy of Context Sensitivity" argument, rendered as
an artifact. Four variants of

    F() { for (i...) for (j...) { A(); B(); } }

place the A-to-B dependence (1) within one j-iteration, (2) across
j-iterations, (3) across i-iterations, (4) across calls to F. A
profiler is useful for parallelization only if it can tell these apart
— case 1 means both loops parallelize; case 2 only the i-loop; case 3
neither loop but F-calls do; case 4 nothing inside F.

Flat and context-sensitive attribution produce the *same* signature
for all four; Alchemist's execution-index walk attributes the edge to
a different construct in each.

A second bench compares profiling cost: what the index tree's extra
precision costs over the cheaper attributions, on the same workload.
"""

import time

from repro.baselines import profile_flat, profile_with_contexts
from repro.core.alchemist import Alchemist
from repro.core.profile_data import DepKind
from repro.ir import compile_source
from repro.runtime.interpreter import Interpreter
from repro.runtime.tracing import NullTracer
from repro.workloads import get

from conftest import emit


def four_case_source(body_a: str, body_b: str) -> str:
    return f"""
    int buf[64];
    void A(int round, int i, int j) {{ {body_a} }}
    int B(int round, int i, int j) {{ {body_b} }}
    int sink;
    int F(int round) {{
        int acc = 0;
        for (int i = 0; i < 3; i++) {{
            for (int j = 0; j < 3; j++) {{
                A(round, i, j);
                acc += B(round, i, j);
            }}
        }}
        return acc;
    }}
    int main() {{
        sink = F(0);
        sink += F(1);
        return 0;
    }}
    """


CASES = [
    ("same_j", "buf[j] = i;", "return buf[j];",
     "both loops parallelize"),
    ("cross_j", "if (j < 2) buf[j + 1] = i;", "return buf[j];",
     "i-loop parallelizes, j-loop does not"),
    ("cross_i", "if (j == 0 && i < 2) buf[10 + i + 1] = i;",
     "return buf[10 + i];",
     "neither loop; calls to F still can"),
    ("cross_f", "if (round == 0) buf[20 + i] = 1;",
     "return round == 1 ? buf[20 + i] : 0;",
     "nothing inside F parallelizes"),
]


def alchemist_attribution(source: str) -> str:
    """The innermost construct whose profile carries the buf edge —
    Alchemist's answer to 'what does this dependence cross?'."""
    report = Alchemist().profile(source)
    loops = sorted((v for v in report.constructs()
                    if v.static.is_loop and v.fn_name == "F"),
                   key=lambda v: -v.total_duration)
    outer, inner = loops[0], loops[1]
    f_proc = next(v for v in report.constructs() if v.name == "F")
    a_proc = next(v for v in report.constructs() if v.name == "A")

    def has_buf(view):
        return any(e.var_hint.startswith("buf")
                   for e in view.edges(DepKind.RAW))

    if has_buf(f_proc):
        return "crosses calls to F"
    if has_buf(outer):
        return "crosses the i-loop"
    if has_buf(inner):
        return "crosses the j-loop"
    if has_buf(a_proc):
        return "intra-j (A boundary only)"
    return "none"


def test_context_inadequacy(benchmark):
    """Table: identical baseline signatures, distinct Alchemist answers."""

    def run():
        rows = []
        flat_signatures = []
        ctx_signatures = []
        for name, body_a, body_b, meaning in CASES:
            source = four_case_source(body_a, body_b)
            flat_signatures.append(
                frozenset(profile_flat(source)
                          .attribution_signature("A", "B")))
            ctx_signatures.append(
                frozenset(profile_with_contexts(source)
                          .attribution_signature("A", "B")))
            rows.append((name, meaning, alchemist_attribution(source)))
        return rows, flat_signatures, ctx_signatures

    rows, flat_sigs, ctx_sigs = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    # The baselines collapse all four cases onto one signature...
    assert len(set(flat_sigs)) == 1
    assert len(set(ctx_sigs)) == 1
    # ...Alchemist gives four different answers.
    answers = [answer for _, _, answer in rows]
    assert len(set(answers)) == 4, answers

    lines = [
        "SIII-B: four dependence placements, one calling context",
        "(paper: 'context sensitivity is not sufficient in general')",
        "",
        f"{'variant':9s} {'flat':>10s} {'ctx-sens':>10s}  "
        f"Alchemist attribution",
    ]
    for name, meaning, answer in rows:
        lines.append(f"{name:9s} {'same sig':>10s} {'same sig':>10s}  "
                     f"{answer}")
        lines.append(f"{'':9s} {'':>10s} {'':>10s}  -> {meaning}")
    emit("baselines_context", "\n".join(lines))


def test_profiler_cost_comparison(benchmark):
    """What index precision costs: wall time of null / flat / context /
    Alchemist tracers on the same workload."""
    program = compile_source(get("gzip", 0.5).source)

    def timed(runner):
        start = time.perf_counter()
        runner()
        return time.perf_counter() - start

    def run():
        return {
            "null": timed(lambda: Interpreter(program, NullTracer()).run()),
            "flat": timed(lambda: profile_flat(program=program)),
            "context": timed(
                lambda: profile_with_contexts(program=program)),
            "alchemist": timed(
                lambda: Alchemist().profile(program=program)),
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Profiler cost on gzip (scale 0.5), one run each",
             f"{'tracer':>10s} {'seconds':>9s} {'x over null':>12s}"]
    for name, seconds in times.items():
        lines.append(f"{name:>10s} {seconds:9.3f} "
                     f"{seconds / times['null']:12.1f}")
    emit("baselines_cost", "\n".join(lines))
    # Shape check only: every profiler costs more than the bare run.
    assert times["alchemist"] > times["null"]
