"""Table IV: violating static dependences at the parallelized
locations of bzip2, ogg, aes and par2."""

from repro.bench import render_table4, table4_rows

from conftest import emit

SCALE = 0.5


def test_table4(benchmark):
    rows = benchmark.pedantic(table4_rows, args=(SCALE,),
                              rounds=1, iterations=1)
    assert len(rows) == 6  # bzip2 x2, ogg, aes, par2 x2
    by_name = {}
    for row in rows:
        by_name.setdefault(row.name, []).append(row)

    # Shape checks mirroring the paper's narrative:
    # bzip2's loops conflict through the shared bzf stream (WAW-heavy).
    assert all(r.waw > 0 for r in by_name["bzip2"])
    # aes conflicts on ivec (WAW and WAR present).
    (aes,) = by_name["aes"]
    assert aes.waw > 0 and aes.war > 0
    # ogg's file loop shows all three kinds (errors/samples/outlen).
    (ogg,) = by_name["ogg"]
    assert ogg.raw > 0 and ogg.waw > 0 and ogg.war > 0
    # par2's loops carry WAR conflicts (buffers reused across rounds).
    assert all(r.war > 0 for r in by_name["par2"])

    emit("table4", render_table4(rows))
