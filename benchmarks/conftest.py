"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables or figures; the
rendered text is printed and also written to ``benchmarks/out/`` so
EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a rendered table/figure and save it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
