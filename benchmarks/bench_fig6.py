"""Fig. 6: construct size vs. violating static RAW dependences for
gzip (before/after removing the parallelized construct), 197.parser,
130.lisp, plus the Delaunay negative control."""

from repro.bench import fig6_data, render_fig6
from repro.core.profile_data import DepKind

from conftest import emit

SCALE = 0.5


def test_fig6(benchmark):
    panels = benchmark.pedantic(fig6_data, kwargs={"scale": SCALE,
                                                   "top": 10},
                                rounds=1, iterations=1)
    assert set(panels) == {"a", "b", "c", "d", "delaunay"}

    # (a): the per-file loop is the largest construct.
    a_rows = panels["a"].rows
    assert a_rows[0].view.static.is_loop
    assert a_rows[0].view.fn_name == "main"

    # (b): once C1 and its singletons are gone, flush_block is among the
    # large remaining candidates.
    b_names = [row.view.name for row in panels["b"].rows[:4]]
    assert "flush_block" in b_names
    assert all(row.view.name != "zip" for row in panels["b"].rows)

    # (c): the dictionary side outweighs the sentence loop.
    c_rows = panels["c"].rows
    dict_rank = next(i for i, r in enumerate(c_rows)
                     if r.view.fn_name == "read_dictionary")
    sentence_rank = next(i for i, r in enumerate(c_rows)
                         if r.view.fn_name == "main"
                         and r.view.static.is_loop)
    assert dict_rank < sentence_rank

    # (d): xlload runs once more than the batch loop iterates.
    d_views = {r.view.name: r.view for r in panels["d"].rows}
    batch = next(v for name, v in d_views.items()
                 if v.static.is_loop and v.fn_name == "main")
    assert d_views["xlload"].instances == batch.instances + 1

    # Delaunay: heavy violating-RAW counts on the hot loop.
    hot = max((r.view for r in panels["delaunay"].rows
               if r.view.static.is_loop),
              key=lambda v: v.total_duration)
    assert hot.violating_count(DepKind.RAW) >= 15

    emit("fig6", render_fig6(panels))
