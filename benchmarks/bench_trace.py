"""Replay-vs-rerun benchmark: the BENCH_trace.json artifact.

Answers the record/replay subsystem's headline claim: running N
analyses from one recorded trace is cheaper than N live instrumented
runs. Per workload, the live side runs one instrumented execution per
analysis (dep via the full Alchemist profiler, locality/hot attached as
live tracers); the replay side records once and streams the trace
through all N consumers in a single pass.

Run directly::

    PYTHONPATH=src python benchmarks/bench_trace.py [scale]

Writes ``BENCH_trace.json`` at the repo root and a rendered table under
``benchmarks/out/``.
"""

from __future__ import annotations

import pathlib
import sys

from repro.bench.harness import trace_bench

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_DIR = pathlib.Path(__file__).parent / "out"


def render(data: dict) -> str:
    lines = [
        "Replay-vs-rerun ({} analyses: {}, scale {}):".format(
            len(data["analyses"]), ",".join(data["analyses"]),
            data["scale"]),
        f"{'workload':12s} {'live(s)':>9s} {'record(s)':>10s} "
        f"{'replay(s)':>10s} {'speedup':>8s} {'events':>9s}",
    ]
    for row in data["rows"]:
        lines.append(
            f"{row['name']:12s} {row['live_seconds']:9.3f} "
            f"{row['record_seconds']:10.3f} "
            f"{row['replay_seconds']:10.3f} "
            f"{row['speedup']:7.2f}x {row['events']:9d}")
    total = data["total"]
    lines.append(
        f"{'TOTAL':12s} {total['live_seconds']:9.3f} "
        f"{total['record_seconds']:10.3f} "
        f"{total['replay_seconds']:10.3f} "
        f"{total['speedup']:7.2f}x")
    columnar = data.get("columnar")
    if columnar:
        lines.append("")
        lines.append(
            "Columnar batch decode vs scalar replay core "
            "({} probe, scale {}):".format(
                ",".join(columnar["analyses"]), columnar["scale"]))
        lines.append(
            f"{'workload':12s} {'scalar(s)':>10s} {'batch(s)':>9s} "
            f"{'speedup':>8s} {'events':>9s} {'Mev/s':>7s}")
        for row in columnar["rows"]:
            mevps = (row["events"] / row["batch_seconds"] / 1e6
                     if row["batch_seconds"] > 0 else float("nan"))
            lines.append(
                f"{row['name']:12s} {row['scalar_seconds']:10.3f} "
                f"{row['batch_seconds']:9.3f} {row['speedup']:7.2f}x "
                f"{row['events']:9d} {mevps:7.2f}")
        ctotal = columnar["total"]
        lines.append(
            f"{'TOTAL':12s} {ctotal['scalar_seconds']:10.3f} "
            f"{ctotal['batch_seconds']:9.3f} {ctotal['speedup']:7.2f}x "
            f"{ctotal['events']:9d}")
    return "\n".join(lines)


def main(scale: float = 0.5) -> dict:
    data = trace_bench(scale=scale, out_path=str(ROOT / "BENCH_trace.json"))
    text = render(data)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "bench_trace.txt").write_text(text + "\n")
    print(text)
    print(f"\nartifact: {ROOT / 'BENCH_trace.json'}")
    return data


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
