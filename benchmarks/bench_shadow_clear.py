"""Micro-benchmark: bucketed ``ShadowMemory.clear_range`` vs. the naive
pre-index implementation.

The naive shadow (reproduced below, as the seed shipped it) pays
``O(min(range, tracked))`` per ``clear_range``; for a large freed heap
block over a large shadow that means scanning every tracked address —
per free. The bucketed index pays only for addresses actually tracked
inside the freed range.

Run directly (``PYTHONPATH=src python benchmarks/bench_shadow_clear.py``)
or via pytest with this file as an argument.
"""

from __future__ import annotations

import time

from repro.core.shadow import ShadowMemory

SENTINEL_NODE = None  # clear_range never touches the node payload


class NaiveShadow:
    """The seed's clear_range strategy, for comparison."""

    def __init__(self) -> None:
        self._entries: dict[int, list] = {}

    def on_write(self, addr: int) -> None:
        entry = self._entries.get(addr)
        if entry is None:
            self._entries[addr] = [(0, SENTINEL_NODE, 0), {}]
        else:
            entry[0] = (0, SENTINEL_NODE, 0)

    def clear_range(self, lo: int, hi: int) -> None:
        entries = self._entries
        if hi - lo < len(entries):
            for addr in range(lo, hi):
                entries.pop(addr, None)
        else:
            for addr in [a for a in entries if lo <= a < hi]:
                del entries[addr]


def _populate_bucketed(tracked: list[int]) -> ShadowMemory:
    shadow = ShadowMemory()
    for addr in tracked:
        shadow.on_write(addr, 0, SENTINEL_NODE, 0)
    return shadow


def _scenario() -> tuple[list[int], list[tuple[int, int]]]:
    """Shadow of 200k scattered addresses; free 400 large sparse blocks.

    Each block spans 64k words but contains only ~40 tracked addresses —
    the pattern produced by freeing big, sparsely-touched heap blocks
    (or tearing down frames while a large global shadow is live).
    """
    tracked = []
    frees = []
    base = 1 << 20
    for block in range(400):
        lo = base + block * 65536
        tracked.extend(lo + i * 1601 for i in range(40))
        frees.append((lo, lo + 65536))
    # A large resident set outside the freed ranges.
    tracked.extend(range(0, 200_000))
    return tracked, frees


def _time_naive(tracked, frees) -> float:
    shadow = NaiveShadow()
    for addr in tracked:
        shadow.on_write(addr)
    start = time.perf_counter()
    for lo, hi in frees:
        shadow.clear_range(lo, hi)
    return time.perf_counter() - start


def _time_bucketed(tracked, frees) -> float:
    shadow = _populate_bucketed(tracked)
    start = time.perf_counter()
    for lo, hi in frees:
        shadow.clear_range(lo, hi)
    return time.perf_counter() - start


def measure() -> tuple[float, float]:
    tracked, frees = _scenario()
    naive = min(_time_naive(tracked, frees) for _ in range(3))
    bucketed = min(_time_bucketed(tracked, frees) for _ in range(3))
    return naive, bucketed


def test_bucketed_clear_range_beats_naive():
    tracked, frees = _scenario()
    # Correctness: both strategies must leave the same tracked set.
    naive = NaiveShadow()
    for addr in tracked:
        naive.on_write(addr)
    bucketed = _populate_bucketed(tracked)
    for lo, hi in frees:
        naive.clear_range(lo, hi)
        bucketed.clear_range(lo, hi)
    assert set(naive._entries) == set(bucketed._entries)

    t_naive, t_bucketed = measure()
    print(f"\nclear_range over 400 sparse 64k-word frees: "
          f"naive {t_naive * 1000:.1f}ms, "
          f"bucketed {t_bucketed * 1000:.1f}ms "
          f"({t_naive / t_bucketed:.1f}x)")
    # The naive scan is range- or shadow-proportional; the index should
    # win by a wide margin. 3x is a conservative floor for CI noise.
    assert t_bucketed * 3 < t_naive


if __name__ == "__main__":
    test_bucketed_clear_range_beats_naive()
    t_naive, t_bucketed = measure()
    print(f"naive:    {t_naive * 1000:8.1f} ms")
    print(f"bucketed: {t_bucketed * 1000:8.1f} ms")
    print(f"speedup:  {t_naive / t_bucketed:8.1f} x")
