"""Table III: per-benchmark construct counts and profiling overhead.

``test_table3_all`` regenerates the whole table; the parametrized
benches time the instrumented run of each workload individually so
pytest-benchmark's stats cover every row.
"""

import pytest

from repro.bench import render_table3, table3_rows
from repro.core.alchemist import Alchemist, ProfileOptions
from repro.ir import compile_source
from repro.workloads import TABLE3_ORDER, get

from conftest import emit

SCALE = 0.5


def test_table3_all(benchmark):
    rows = benchmark.pedantic(table3_rows, args=(SCALE,),
                              rounds=1, iterations=1)
    assert len(rows) == len(TABLE3_ORDER)
    for row in rows:
        # The shape that matters: instrumentation costs real time
        # (paper: 166-712x on valgrind; a few x on this substrate).
        assert row.prof_seconds > row.orig_seconds
        assert row.static > 0 and row.dynamic > 0
    emit("table3", render_table3(rows))


@pytest.mark.parametrize("name", TABLE3_ORDER)
def test_profile_run(benchmark, name):
    """Instrumented execution time per workload (the Prof. column)."""
    workload = get(name, SCALE)
    program = compile_source(workload.source)
    alch = Alchemist(ProfileOptions(measure_baseline=False))

    def run():
        return alch.profile(program=program)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.stats.instructions > 0


@pytest.mark.parametrize("name", TABLE3_ORDER)
def test_baseline_run(benchmark, name):
    """Uninstrumented execution time per workload (the Orig. column)."""
    workload = get(name, SCALE)
    program = compile_source(workload.source)
    alch = Alchemist()

    def run():
        return alch.baseline_seconds(program)

    seconds = benchmark.pedantic(run, rounds=2, iterations=1)
    assert seconds >= 0
