"""Fig. 2 and Fig. 3: the gzip dependence-distance profile listing."""

from repro.bench import gzip_profile_listing
from repro.core.profile_data import DepKind

from conftest import emit


def test_gzip_profile_listing(benchmark):
    report, text = benchmark.pedantic(gzip_profile_listing, args=(0.5,),
                                      rounds=1, iterations=1)
    fb = next(v for v in report.constructs() if v.name == "flush_block")

    # The paper's signature rows:
    retval = [e for e in fb.edges(DepKind.RAW)
              if e.var_hint.startswith("retval(")]
    assert retval and min(e.min_tdep for e in retval) == 1
    assert any(e.var_hint == "outcnt" for e in fb.edges(DepKind.RAW))
    assert any(e.var_hint == "outcnt" for e in fb.edges(DepKind.WAW))
    war_bases = {e.var_hint.split("[")[0] for e in fb.edges(DepKind.WAR)}
    assert "flag_buf" in war_bases
    # Disjoint outbuf writes carry no WAW edges.
    waw_bases = {e.var_hint.split("[")[0] for e in fb.edges(DepKind.WAW)}
    assert "outbuf" not in waw_bases

    emit("fig2_fig3", text)
