"""Microbenchmarks of the profiler's building blocks.

Not a paper table; these quantify where Alchemist's 166-712x slowdown
comes from (dependence detection + indexing, per §IV-A) on this
substrate.
"""

from repro.analysis.constructs import ConstructTable
from repro.core.alchemist import Alchemist, ProfileOptions
from repro.core.node import ConstructNode
from repro.core.pool import ConstructPool
from repro.core.shadow import ShadowMemory
from repro.ir import compile_source
from repro.runtime.interpreter import Interpreter
from repro.runtime.tracing import NullTracer

LOOPY = """
int a[256];
int main() {
    int acc = 0;
    for (int r = 0; r < 40; r++) {
        for (int i = 0; i < 256; i++) {
            a[i] = (a[i] + i * r) % 9973;
        }
        for (int i = 1; i < 256; i++) {
            acc = (acc + a[i] - a[i - 1]) % 65521;
        }
    }
    print(acc);
    return 0;
}
"""


def test_interpreter_throughput(benchmark):
    """Baseline instructions/second with a null tracer."""
    program = compile_source(LOOPY)

    def run():
        interp = Interpreter(program, NullTracer())
        interp.run()
        return interp.time

    instructions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert instructions > 100_000


def test_profiled_throughput(benchmark):
    """Instructions/second under the full Alchemist tracer."""
    program = compile_source(LOOPY)
    alch = Alchemist()

    def run():
        return alch.profile(program=program).stats.instructions

    instructions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert instructions > 100_000


def test_profiled_raw_only_throughput(benchmark):
    """RAW-only tracking (WAR/WAW disabled) — the cheaper mode."""
    program = compile_source(LOOPY)
    alch = Alchemist(ProfileOptions(track_war_waw=False))

    def run():
        return alch.profile(program=program).stats.instructions

    instructions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert instructions > 100_000


def test_pool_acquire_release(benchmark):
    """Pool recycle cost (Table I's inner loop).

    The clock must keep advancing across benchmark rounds: pool nodes
    retire only once they have been dead longer than their duration, so
    a clock that restarted would make every node permanently
    unretireable and the free-list scan quadratic in round count.
    """
    pool = ConstructPool(1024)
    state = {"clock": 0}

    def cycle():
        clock = state["clock"]
        nodes = []
        for i in range(256):
            clock += 3
            node = pool.acquire(clock)
            node.t_enter, node.t_exit = clock, 0
            nodes.append(node)
        for node in nodes:
            clock += 1
            node.t_exit = clock
            pool.release(node)
        # Jump past every node's retirement horizon before the next
        # round so recycling (not growth) is what gets measured.
        state["clock"] = clock + 8 * 256
        return clock

    benchmark(cycle)


def test_shadow_read_write(benchmark):
    """Shadow-memory event cost (the dominant per-instruction work)."""
    shadow = ShadowMemory()
    node = ConstructNode()

    def events():
        hits = 0
        for t in range(1024):
            addr = t & 127
            if t & 1:
                waw, wars = shadow.on_write(addr, t & 31, node, t)
                hits += waw is not None
            else:
                hits += shadow.on_read(addr, t & 31, node, t) is not None
        return hits

    benchmark(events)


def test_construct_table_build(benchmark):
    """Static analysis cost (dominators + loops + regions)."""
    program = compile_source(LOOPY)
    table = benchmark(lambda: ConstructTable(program))
    assert table.static_count() > 3
